(* The pluggable preconditioner layer (lib/precond):
   - registry/selection contract (names, resolution, demotion schedule)
   - dense kind: bit-identity with the legacy Hankel·Diagonal draw stream
     and arithmetic it replaced
   - sparse butterfly and extension-field kinds: the record is internally
     consistent (apply = dense materialisation, transpose, det = Gauss det)
     and invertible by construction
   - end-to-end: every kind solves through Solver and Wiedemann *)

module Pc = Kp_precond.Precond
module F = Kp_field.Fields.Gf_97
module CK = Kp_poly.Conv.Karatsuba (F)
module SP = Kp_precond.Precond.Make (F) (CK)
module M = Kp_matrix.Dense.Make (F)
module G = Kp_matrix.Gauss.Make (F)
module S = Kp_core.Solver.Make (F) (CK)
module W = Kp_core.Wiedemann.Make (F)
module Bb = Kp_matrix.Blackbox.Make (F)

let st0 seed = Random.State.make [| 0x5ca1ab1e; seed |]
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let farr_eq a b = Array.length a = Array.length b && Array.for_all2 F.equal a b

let charpoly ~n d = (S.charpoly_for_field ?pool:None ~n) ~n d

(* ---- registry and selection ---- *)

let test_registry () =
  check_int "three kinds" 3 (List.length Pc.all_kinds);
  List.iter
    (fun k ->
      check_bool
        (Printf.sprintf "kind_of_string roundtrips %s" (Pc.kind_name k))
        true
        (Pc.kind_of_string (Pc.kind_name k) = Some k);
      check_bool "choice_of_string roundtrips forced" true
        (Pc.choice_of_string (Pc.kind_name k) = Some (Pc.Forced k)))
    Pc.all_kinds;
  check_bool "auto roundtrips" true (Pc.choice_of_string "auto" = Some Pc.Auto);
  check_bool "junk is None" true (Pc.choice_of_string "nonesuch" = None);
  check_bool "auto resolves dense for dense engines" true
    (Pc.resolve Pc.Auto = Pc.Dense_hd);
  check_bool "auto resolves sparse for black boxes" true
    (Pc.resolve ~sparse:true Pc.Auto = Pc.Sparse_butterfly);
  check_bool "forced wins over sparse hint" true
    (Pc.resolve ~sparse:true (Pc.Forced Pc.Dense_hd) = Pc.Dense_hd)

let test_demotion_schedule () =
  let retries = 10 in
  (* first half of the budget keeps the requested kind, the second half
     falls back to the dense floor; dense itself never moves *)
  for attempt = 1 to retries + 1 do
    let expect =
      if 2 * attempt > retries + 1 then Pc.Dense_hd else Pc.Sparse_butterfly
    in
    check_bool
      (Printf.sprintf "attempt %d" attempt)
      true
      (Pc.kind_for_attempt ~retries ~attempt Pc.Sparse_butterfly = expect);
    check_bool "dense is the floor" true
      (Pc.kind_for_attempt ~retries ~attempt Pc.Dense_hd = Pc.Dense_hd)
  done

(* ---- dense kind: bit-identity with the legacy draw stream ---- *)

let test_dense_bit_identity () =
  let n = 9 and card_s = 4096 in
  let st_legacy = st0 21 and st_new = st0 21 in
  (* the code this layer replaced drew h (2n-1 samples) then d (n non-zero
     samples with the <=100-retry discipline) *)
  let h = Array.init ((2 * n) - 1) (fun _ -> F.sample st_legacy ~card_s) in
  let d = Array.init n (fun _ -> SP.sample_nonzero st_legacy ~card_s) in
  let p = SP.build ~charpoly ~card_s ~n Pc.Dense_hd st_new in
  check_bool "kind" true (p.Pc.kind = Pc.Dense_hd);
  (* identical RNG consumption: the next draw agrees on both streams *)
  check_bool "draw streams stay in lockstep" true
    (F.equal (F.sample st_legacy ~card_s) (F.sample st_new ~card_s));
  (* (H·D)_{ij} = h_{i+j}·d_j, row-major *)
  let dense = p.Pc.dense () in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if not (F.equal dense.((i * n) + j) (F.mul h.(i + j) d.(j))) then
        ok := false
    done
  done;
  check_bool "dense materialisation = H·D" true !ok;
  check_bool "det = det_hd of the same draws" true
    (F.equal (p.Pc.det ()) (SP.det_hd ~charpoly ~n ~h ~d));
  (* apply agrees with the materialised matrix *)
  let v = Array.init n (fun i -> F.of_int (i + 3)) in
  let pm = M.init n n (fun i j -> dense.((i * n) + j)) in
  check_bool "apply = dense matvec" true (farr_eq (p.Pc.apply v) (M.matvec pm v));
  check_bool "transpose = dense^T matvec" true
    (farr_eq (p.Pc.apply_transpose v) (M.matvec (M.transpose pm) v))

let test_dense_choice_is_default_path () =
  (* forcing dense must be indistinguishable from the default on dense
     inputs: same answer and the same number of randomized attempts *)
  let n = 10 in
  let st1 = st0 22 and st2 = st0 22 in
  let a1 = M.random_nonsingular st1 n in
  let a2 = M.random_nonsingular st2 n in
  let b1 = Array.init n (fun i -> F.of_int (i + 1)) in
  match
    ( S.solve st1 a1 b1,
      S.solve ~precond:(Pc.Forced Pc.Dense_hd) st2 a2 (Array.copy b1) )
  with
  | Ok (x1, r1), Ok (x2, r2) ->
    check_bool "same solution" true (farr_eq x1 x2);
    check_int "same attempt count" r1.S.O.attempts r2.S.O.attempts
  | _ -> Alcotest.fail "dense solve failed"

(* ---- structured kinds: record self-consistency ---- *)

let record_consistent name (p : F.t Pc.t) =
  let n = p.Pc.n in
  let dense = p.Pc.dense () in
  let pm = M.init n n (fun i j -> dense.((i * n) + j)) in
  let v = Array.init n (fun i -> F.of_int ((17 * i) + 5)) in
  check_bool (name ^ ": apply = dense matvec") true
    (farr_eq (p.Pc.apply v) (M.matvec pm v));
  check_bool (name ^ ": transpose = dense^T matvec") true
    (farr_eq (p.Pc.apply_transpose v) (M.matvec (M.transpose pm) v));
  let gdet = G.det (G.M.init n n (fun i j -> dense.((i * n) + j))) in
  check_bool (name ^ ": det = Gauss det of dense") true
    (F.equal (p.Pc.det ()) gdet);
  check_bool (name ^ ": invertible by construction") true
    (not (F.is_zero gdet));
  check_bool (name ^ ": ops_per_apply > 0") true
    (Lazy.force p.Pc.ops_per_apply > 0)

let test_butterfly_consistent () =
  List.iter
    (fun n ->
      let st = st0 (30 + n) in
      let p = SP.build ~charpoly ~card_s:4096 ~n Pc.Sparse_butterfly st in
      check_bool "kind" true (p.Pc.kind = Pc.Sparse_butterfly);
      record_consistent (Printf.sprintf "butterfly n=%d" n) p)
    [ 1; 2; 5; 8; 13 ]

let test_butterfly_is_cheap () =
  (* the sparse track's payoff: ops per apply is O(n log n), far below the
     dense Hankel convolution cost for the same n *)
  let n = 64 in
  let st = st0 40 in
  let p = SP.build ~charpoly ~card_s:4096 ~n Pc.Sparse_butterfly st in
  let sparse_ops = Lazy.force p.Pc.ops_per_apply in
  let dense_ops = SP.hankel_ops_per_apply n + n in
  check_bool
    (Printf.sprintf "butterfly %d ops << dense %d ops" sparse_ops dense_ops)
    true
    (sparse_ops * 2 < dense_ops)

let test_ext_field_gf2 () =
  (* the GF(2) track: card(S) escalation above q routes through GF(2^k) *)
  let module F2 = Kp_field.Fields.Gf2 in
  let module C2 = Kp_poly.Conv.Karatsuba (F2) in
  let module SP2 = Kp_precond.Precond.Make (F2) (C2) in
  let module M2 = Kp_matrix.Dense.Make (F2) in
  let module G2 = Kp_matrix.Gauss.Make (F2) in
  check_bool "ceiling lifts to 2^8" true
    (SP2.escalation_ceiling Pc.Ext_field = Some 256);
  check_bool "dense ceiling stays at q" true
    (SP2.escalation_ceiling Pc.Dense_hd = Some 2);
  List.iter
    (fun (n, card_s) ->
      let st = st0 (50 + n + card_s) in
      let p = SP2.build ~charpoly:(fun ~n:_ _ -> [||]) ~card_s ~n Pc.Ext_field st in
      check_bool "kind" true (p.Pc.kind = Pc.Ext_field);
      let dense = p.Pc.dense () in
      let pm = M2.init n n (fun i j -> dense.((i * n) + j)) in
      let v = Array.init n (fun i -> if i land 1 = 0 then F2.one else F2.zero) in
      check_bool "apply = dense matvec" true
        (Array.for_all2 F2.equal (p.Pc.apply v) (M2.matvec pm v));
      check_bool "transpose = dense^T matvec" true
        (Array.for_all2 F2.equal
           (p.Pc.apply_transpose v)
           (M2.matvec (M2.transpose pm) v));
      let gdet = G2.det (G2.M.init n n (fun i j -> dense.((i * n) + j))) in
      check_bool "det = Gauss det" true (F2.equal (p.Pc.det ()) gdet);
      check_bool "invertible by construction" true (not (F2.is_zero gdet)))
    (* card_s = 2: degenerate butterfly over F itself; card_s = 16/256:
       genuine GF(2^4)/GF(2^8) chunk scalars, with and without a tail *)
    [ (6, 2); (8, 16); (12, 256); (16, 16) ]

(* ---- end-to-end: every kind solves ---- *)

let test_solver_all_kinds () =
  List.iter
    (fun kind ->
      let st = st0 60 in
      let n = 12 in
      let a = M.random_nonsingular st n in
      let x_true = Array.init n (fun _ -> F.random st) in
      let b = M.matvec a x_true in
      match S.solve ~precond:(Pc.Forced kind) st a b with
      | Ok (x, _) ->
        check_bool (Pc.kind_name kind ^ " solves") true (farr_eq x x_true)
      | Error e -> Alcotest.fail (Pc.kind_name kind ^ ": " ^ S.O.error_to_string e))
    Pc.all_kinds

let test_wiedemann_all_kinds () =
  List.iter
    (fun kind ->
      let st = st0 61 in
      let n = 12 in
      let a = M.random_nonsingular st n in
      let x_true = Array.init n (fun _ -> F.random st) in
      let b = M.matvec a x_true in
      match W.solve_preconditioned ~precond:(Pc.Forced kind) st (Bb.of_dense a) b with
      | Ok (x, _) ->
        check_bool (Pc.kind_name kind ^ " bb-solves") true (farr_eq x x_true)
      | Error e ->
        Alcotest.fail (Pc.kind_name kind ^ ": " ^ W.O.error_to_string e))
    Pc.all_kinds

let test_det_all_kinds () =
  List.iter
    (fun kind ->
      let st = st0 62 in
      let n = 10 in
      let a = M.random_nonsingular st n in
      let expect = G.det (G.M.init n n (fun i j -> M.get a i j)) in
      match S.det ~precond:(Pc.Forced kind) st a with
      | Ok (d, _) ->
        check_bool (Pc.kind_name kind ^ " det") true (F.equal d expect)
      | Error e -> Alcotest.fail (Pc.kind_name kind ^ ": " ^ S.O.error_to_string e))
    Pc.all_kinds

let test_build_counters () =
  let before name = Option.value ~default:0 (Kp_obs.Counter.find name) in
  let b0 = before "precond.build.sparse" in
  let st = st0 63 in
  ignore (SP.build ~charpoly ~card_s:4096 ~n:8 Pc.Sparse_butterfly st);
  check_int "build ticks its per-kind counter" (b0 + 1)
    (before "precond.build.sparse")

let () =
  Alcotest.run "precond"
    [
      ( "registry",
        [
          Alcotest.test_case "names/resolution" `Quick test_registry;
          Alcotest.test_case "demotion schedule" `Quick test_demotion_schedule;
          Alcotest.test_case "build counters" `Quick test_build_counters;
        ] );
      ( "dense",
        [
          Alcotest.test_case "bit-identity with legacy draws" `Quick
            test_dense_bit_identity;
          Alcotest.test_case "forced dense = default path" `Quick
            test_dense_choice_is_default_path;
        ] );
      ( "structured",
        [
          Alcotest.test_case "butterfly record consistent" `Quick
            test_butterfly_consistent;
          Alcotest.test_case "butterfly ops << dense ops" `Quick
            test_butterfly_is_cheap;
          Alcotest.test_case "ext-field GF(2) record consistent" `Quick
            test_ext_field_gf2;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "solver: all kinds" `Quick test_solver_all_kinds;
          Alcotest.test_case "wiedemann: all kinds" `Quick
            test_wiedemann_all_kinds;
          Alcotest.test_case "det: all kinds" `Quick test_det_all_kinds;
        ] );
    ]
