(* Differential suite: the same question asked of every engine that can
   answer it must yield the identical answer — or the identical typed
   rejection.

   For each shared seed we build the same (seed-determined) input and run
   solve / det / inverse / rank / nullspace through

     - the black-box engine (preconditioned Wiedemann, [Kp_core.Wiedemann]),
     - the dense Theorem-4 engine ([Kp_core.Solver] / [Inverse] / [Rank] /
       [Nullspace]),
     - the Gaussian-elimination oracle ([Kp_matrix.Gauss]),

   over four fields: GF(97) (small prime — the clamped-sample-set regime),
   the NTT prime field, GF(2⁸) (characteristic 2 — the Chistov route), and
   Q (characteristic 0, exact rationals).  Answers to these questions are
   unique, so agreement must be exact ([F.equal], no tolerance); nullspaces
   are compared by dimension plus membership, the only well-defined
   comparison between bases. *)

(* seeds and field instantiations are shared across suites via Test_seeds *)
let shared_seeds = Test_seeds.shared_seeds

module type PROFILE = sig
  val name : string

  val sizes : int list
  (** Non-singular test sizes (kept small for the expensive fields). *)

  val singular_n : int
end

module Diff (F : Kp_field.Field_intf.FIELD) (P : PROFILE) = struct
  module C = Kp_poly.Conv.Karatsuba (F)
  module M = Kp_matrix.Dense.Make (F)
  module G = Kp_matrix.Gauss.Make (F)
  module Bb = Kp_matrix.Blackbox.Make (F)
  module S = Kp_core.Solver.Make (F) (C)
  module I = Kp_core.Inverse.Make (F) (C)
  module Rk = Kp_core.Rank.Make (F) (C)
  module Ns = Kp_core.Nullspace.Make (F) (C)
  module W = Kp_core.Wiedemann.Make (F)
  module BW = Kp_core.Block_wiedemann.Make (F) (C)
  module Sess = Kp_session.Session.Make (F) (C)
  module O = Kp_robust.Outcome

  let vec_equal = Array.for_all2 F.equal

  let ctx seed n what = Printf.sprintf "%s seed=%d n=%d: %s" P.name seed n what

  let fail_typed seed n what e =
    Alcotest.failf "%s" (ctx seed n (what ^ ": " ^ O.error_to_string e))

  let states = Test_seeds.states

  let test_nonsingular () =
    List.iter
      (fun seed ->
        List.iter
          (fun n ->
            let st = Kp_util.Rng.make seed in
            let a = M.random_nonsingular st n in
            let x_true = Array.init n (fun _ -> F.random st) in
            let b = M.matvec a x_true in
            let sts = states (seed + n) 9 in
            (* solve — the unique solution, bit-identical on all engines *)
            (match G.solve a b with
            | Some x -> Alcotest.(check bool) (ctx seed n "gauss solve") true (vec_equal x x_true)
            | None -> Alcotest.failf "%s" (ctx seed n "gauss oracle called the matrix singular"));
            (match S.solve sts.(0) a b with
            | Ok (x, _) ->
              Alcotest.(check bool) (ctx seed n "dense solve = oracle") true (vec_equal x x_true)
            | Error e -> fail_typed seed n "dense solve" e);
            (match W.solve_preconditioned sts.(1) (Bb.of_dense a) b with
            | Ok (x, _) ->
              Alcotest.(check bool) (ctx seed n "blackbox solve = oracle") true (vec_equal x x_true)
            | Error e -> fail_typed seed n "blackbox solve" e);
            (* det *)
            let det_oracle = G.det a in
            (match S.det sts.(2) a with
            | Ok (d, _) ->
              Alcotest.(check bool) (ctx seed n "dense det = oracle") true (F.equal d det_oracle)
            | Error e -> fail_typed seed n "dense det" e);
            (match W.det sts.(3) (Bb.of_dense a) with
            | Ok (d, _) ->
              Alcotest.(check bool) (ctx seed n "blackbox det = oracle") true (F.equal d det_oracle)
            | Error e -> fail_typed seed n "blackbox det" e);
            (* inverse — both Theorem-6 routes against the oracle *)
            (match G.inverse a with
            | None -> Alcotest.failf "%s" (ctx seed n "gauss oracle failed to invert")
            | Some inv_oracle ->
              (match I.inverse sts.(4) a with
              | Ok (inv, _) ->
                Alcotest.(check bool) (ctx seed n "baur-strassen inverse = oracle") true
                  (M.equal inv inv_oracle)
              | Error e -> fail_typed seed n "baur-strassen inverse" e);
              (match I.inverse_via_solves sts.(5) a with
              | Ok (inv, _) ->
                Alcotest.(check bool) (ctx seed n "n-solves inverse = oracle") true
                  (M.equal inv inv_oracle)
              | Error e -> fail_typed seed n "n-solves inverse" e));
            (* session — the cached-prefix engine answers like the fresh
               ones, with exactly one build behind all three questions *)
            let sess = Sess.create sts.(8) in
            (match Sess.solve sess a b with
            | Ok (x, _) ->
              Alcotest.(check bool) (ctx seed n "session solve = oracle") true (vec_equal x x_true)
            | Error e -> fail_typed seed n "session solve" e);
            (match Sess.det sess a with
            | Ok (d, _) ->
              Alcotest.(check bool) (ctx seed n "session det = oracle") true (F.equal d det_oracle)
            | Error e -> fail_typed seed n "session det" e);
            (match (Sess.inverse sess a, G.inverse a) with
            | Ok (inv, _), Some inv_oracle ->
              Alcotest.(check bool) (ctx seed n "session inverse = oracle") true
                (M.equal inv inv_oracle)
            | Error e, _ -> fail_typed seed n "session inverse" e
            | Ok _, None -> Alcotest.failf "%s" (ctx seed n "gauss oracle failed to invert"));
            let s = Sess.stats sess in
            Alcotest.(check bool) (ctx seed n "session: one build, no evictions") true
              (s.Sess.misses = 1 && s.Sess.hits = 2 && s.Sess.evictions = 0);
            (* rank *)
            Alcotest.(check int) (ctx seed n "rank = oracle") (G.rank a) (Rk.rank sts.(6) a);
            (* nullspace of a non-singular matrix is trivial *)
            (match Ns.nullspace sts.(7) a with
            | Ok [] -> ()
            | Ok basis ->
              Alcotest.failf "%s" (ctx seed n (Printf.sprintf
                   "nullspace returned %d vectors for a non-singular matrix"
                   (List.length basis)))
            | Error e -> fail_typed seed n "nullspace" e))
          P.sizes)
      shared_seeds

  let test_singular () =
    List.iter
      (fun seed ->
        let n = P.singular_n in
        let r = n - 2 in
        let st = Kp_util.Rng.make seed in
        let a = M.random_of_rank st n ~rank:r in
        let xs = Array.init n (fun _ -> F.random st) in
        let b = M.matvec a xs in
        let sts = states (seed + n) 8 in
        Alcotest.(check bool) (ctx seed n "oracle sees singular") true (G.is_singular a);
        (* solve: the dense engine must reject with the typed singularity
           witness the oracle's verdict corresponds to *)
        (match S.solve sts.(0) a b with
        | Error (O.Singular _) -> ()
        | Ok _ -> Alcotest.failf "%s" (ctx seed n "dense solve accepted a singular system")
        | Error e -> fail_typed seed n "dense solve (expected Singular)" e);
        (* det: zero everywhere, as an answer (with witness), not an error *)
        Alcotest.(check bool) (ctx seed n "oracle det = 0") true (F.is_zero (G.det a));
        (match S.det sts.(1) a with
        | Ok (d, _) -> Alcotest.(check bool) (ctx seed n "dense det = 0") true (F.is_zero d)
        | Error e -> fail_typed seed n "dense det" e);
        (match W.det sts.(2) (Bb.of_dense a) with
        | Ok (d, _) -> Alcotest.(check bool) (ctx seed n "blackbox det = 0") true (F.is_zero d)
        | Error e -> fail_typed seed n "blackbox det" e);
        (* inverse: common typed rejection *)
        (match G.inverse a with
        | Some _ -> Alcotest.failf "%s" (ctx seed n "gauss oracle inverted a singular matrix")
        | None -> ());
        (match I.inverse sts.(3) a with
        | Error (O.Singular _) -> ()
        | Ok _ -> Alcotest.failf "%s" (ctx seed n "inverse accepted a singular matrix")
        | Error e -> fail_typed seed n "inverse (expected Singular)" e);
        (* session: same typed outcomes as the fresh engines, from one
           cached singularity verdict *)
        let sess = Sess.create sts.(7) in
        (match Sess.solve sess a b with
        | Error (O.Singular _) -> ()
        | Ok _ -> Alcotest.failf "%s" (ctx seed n "session solve accepted a singular system")
        | Error e -> fail_typed seed n "session solve (expected Singular)" e);
        (match Sess.det sess a with
        | Ok (d, _) -> Alcotest.(check bool) (ctx seed n "session det = 0") true (F.is_zero d)
        | Error e -> fail_typed seed n "session det" e);
        (match Sess.inverse sess a with
        | Error (O.Singular _) -> ()
        | Ok _ -> Alcotest.failf "%s" (ctx seed n "session inverse accepted a singular matrix")
        | Error e -> fail_typed seed n "session inverse (expected Singular)" e);
        Alcotest.(check bool) (ctx seed n "session: singular verdict cached") true
          ((Sess.stats sess).Sess.misses = 1 && (Sess.stats sess).Sess.hits = 2);
        (* rank *)
        Alcotest.(check int) (ctx seed n "oracle rank = construction") r (G.rank a);
        Alcotest.(check int) (ctx seed n "rank = oracle") r (Rk.rank sts.(4) a);
        (* nullspace: same dimension as the oracle's, every vector a member *)
        (match Ns.nullspace sts.(5) a with
        | Ok basis ->
          Alcotest.(check int) (ctx seed n "nullspace dimension = oracle")
            (List.length (G.nullspace a))
            (List.length basis);
          List.iter
            (fun v ->
              Alcotest.(check bool) (ctx seed n "nullspace vector satisfies A·v = 0") true
                (Array.for_all F.is_zero (M.matvec a v)))
            basis
        | Error e -> fail_typed seed n "nullspace" e);
        (* singular solve: a solution of the consistent system, verified *)
        (match Ns.solve_singular sts.(6) a b with
        | Ok (Some x) ->
          Alcotest.(check bool) (ctx seed n "singular solve satisfies A·x = b") true
            (vec_equal (M.matvec a x) b)
        | Ok None ->
          Alcotest.failf "%s" (ctx seed n "singular solve called a consistent system inconsistent")
        | Error e -> fail_typed seed n "singular solve" e))
      shared_seeds

  (* --- block engine rows: same seed-determined inputs, every blocking
     factor must agree exactly with the oracle and the scalar engines --- *)

  let block_factors = [ 1; 2; 4 ]

  let test_block_nonsingular () =
    List.iter
      (fun seed ->
        List.iter
          (fun n ->
            let st = Kp_util.Rng.make seed in
            let a = M.random_nonsingular st n in
            let x_true = Array.init n (fun _ -> F.random st) in
            let b = M.matvec a x_true in
            let det_oracle = G.det a in
            List.iteri
              (fun i bf ->
                let sts = states (seed + n + (137 * (i + 1))) 2 in
                let what s = Printf.sprintf "%s b=%d" s bf in
                (match BW.solve ~block_factor:bf sts.(0) a b with
                | Ok (x, _) ->
                  Alcotest.(check bool) (ctx seed n (what "block solve = oracle")) true
                    (vec_equal x x_true)
                | Error e -> fail_typed seed n (what "block solve") e);
                match BW.det ~block_factor:bf sts.(1) a with
                | Ok (d, _) ->
                  Alcotest.(check bool) (ctx seed n (what "block det = oracle")) true
                    (F.equal d det_oracle)
                | Error e -> fail_typed seed n (what "block det") e)
              block_factors;
            (* a 2-RHS batch rides one block run *)
            let sts = states (seed + n + 997) 3 in
            let x2 = Array.init n (fun _ -> F.random sts.(2)) in
            let b2 = M.matvec a x2 in
            (match BW.solve_batch sts.(0) a [| b; b2 |] with
            | Ok (xs, _) ->
              Alcotest.(check bool) (ctx seed n "block batch solve = oracle") true
                (vec_equal xs.(0) x_true && vec_equal xs.(1) x2)
            | Error e -> fail_typed seed n "block batch solve" e);
            (* rank of a non-singular matrix through block determinants *)
            Alcotest.(check int) (ctx seed n "block rank = n") n
              (BW.rank ~block_factor:2 sts.(1) a);
            (* b=1 degeneration: same random stream, same answer and the
               same attempt count as the scalar engine *)
            let st_scalar = Kp_util.Rng.make ((seed * 65599) + n) in
            let st_block = Kp_util.Rng.make ((seed * 65599) + n) in
            match (S.solve st_scalar a b, BW.solve ~block_factor:1 st_block a b) with
            | Ok (xs_, ra), Ok (xb_, rb) ->
              Alcotest.(check bool) (ctx seed n "b=1 block = scalar answer") true
                (vec_equal xs_ xb_);
              Alcotest.(check int) (ctx seed n "b=1 block = scalar attempts")
                ra.O.attempts rb.O.attempts
            | Error e, _ -> fail_typed seed n "scalar solve (b=1 identity)" e
            | _, Error e -> fail_typed seed n "block solve (b=1 identity)" e)
          P.sizes)
      shared_seeds

  let test_block_singular () =
    List.iter
      (fun seed ->
        let n = P.singular_n in
        let r = n - 2 in
        let st = Kp_util.Rng.make seed in
        let a = M.random_of_rank st n ~rank:r in
        let xs = Array.init n (fun _ -> F.random st) in
        let b = M.matvec a xs in
        List.iter
          (fun bf ->
            let sts = states (seed + n + (211 * bf)) 2 in
            let what s = Printf.sprintf "%s b=%d" s bf in
            (match BW.solve ~block_factor:bf sts.(0) a b with
            | Error (O.Singular _) -> ()
            | Ok _ ->
              Alcotest.failf "%s"
                (ctx seed n (what "block solve accepted a singular system"))
            | Error e ->
              fail_typed seed n (what "block solve (expected Singular)") e);
            match BW.det ~block_factor:bf sts.(1) a with
            | Ok (d, _) ->
              Alcotest.(check bool) (ctx seed n (what "block det = 0")) true
                (F.is_zero d)
            | Error e -> fail_typed seed n (what "block det") e)
          [ 1; 2 ];
        let sts = states (seed + n + 1777) 1 in
        Alcotest.(check int) (ctx seed n "block rank = oracle") r
          (BW.rank ~block_factor:2 sts.(0) a))
      shared_seeds

  (* --- sharded rows: the row-block engine behind every entry point must
     reproduce the oracle for every shard count, including s > n --- *)

  let shard_counts = [ 2; 3; 9 ]

  let test_sharded_nonsingular () =
    List.iter
      (fun seed ->
        List.iter
          (fun n ->
            let st = Kp_util.Rng.make seed in
            let a = M.random_nonsingular st n in
            let x_true = Array.init n (fun _ -> F.random st) in
            let b = M.matvec a x_true in
            let det_oracle = G.det a in
            List.iteri
              (fun i s ->
                let sts = states (seed + n + (389 * (i + 1))) 4 in
                let what w = Printf.sprintf "%s shards=%d" w s in
                (match S.solve ~shards:s sts.(0) a b with
                | Ok (x, _) ->
                  Alcotest.(check bool) (ctx seed n (what "sharded solve = oracle")) true
                    (vec_equal x x_true)
                | Error e -> fail_typed seed n (what "sharded solve") e);
                (match S.det ~shards:s sts.(1) a with
                | Ok (d, _) ->
                  Alcotest.(check bool) (ctx seed n (what "sharded det = oracle")) true
                    (F.equal d det_oracle)
                | Error e -> fail_typed seed n (what "sharded det") e);
                (match BW.solve ~block_factor:2 ~shards:s sts.(2) a b with
                | Ok (x, _) ->
                  Alcotest.(check bool) (ctx seed n (what "sharded block solve = oracle"))
                    true (vec_equal x x_true)
                | Error e -> fail_typed seed n (what "sharded block solve") e);
                Alcotest.(check int) (ctx seed n (what "sharded block rank = n")) n
                  (BW.rank ~block_factor:2 ~shards:s sts.(3) a))
              shard_counts;
            (* sharding is invisible: the same random stream with and
               without shards yields bit-identical answers and attempts *)
            let st1 = Kp_util.Rng.make ((seed * 73) + n) in
            let st2 = Kp_util.Rng.make ((seed * 73) + n) in
            match (S.solve st1 a b, S.solve ~shards:3 st2 a b) with
            | Ok (x1, r1), Ok (x2, r2) ->
              Alcotest.(check bool) (ctx seed n "sharded = unsharded answer") true
                (vec_equal x1 x2);
              Alcotest.(check int) (ctx seed n "sharded = unsharded attempts")
                r1.O.attempts r2.O.attempts
            | Error e, _ -> fail_typed seed n "unsharded solve (identity)" e
            | _, Error e -> fail_typed seed n "sharded solve (identity)" e)
          P.sizes)
      shared_seeds

  let test_sharded_singular () =
    List.iter
      (fun seed ->
        let n = P.singular_n in
        let r = n - 2 in
        let st = Kp_util.Rng.make seed in
        let a = M.random_of_rank st n ~rank:r in
        let xs = Array.init n (fun _ -> F.random st) in
        let b = M.matvec a xs in
        List.iter
          (fun s ->
            let sts = states (seed + n + (97 * s)) 3 in
            let what w = Printf.sprintf "%s shards=%d" w s in
            (match S.solve ~shards:s sts.(0) a b with
            | Error (O.Singular _) -> ()
            | Ok _ ->
              Alcotest.failf "%s"
                (ctx seed n (what "sharded solve accepted a singular system"))
            | Error e ->
              fail_typed seed n (what "sharded solve (expected Singular)") e);
            (match S.det ~shards:s sts.(1) a with
            | Ok (d, _) ->
              Alcotest.(check bool) (ctx seed n (what "sharded det = 0")) true
                (F.is_zero d)
            | Error e -> fail_typed seed n (what "sharded det") e);
            Alcotest.(check int) (ctx seed n (what "sharded rank = oracle")) r
              (BW.rank ~block_factor:2 ~shards:s sts.(2) a))
          [ 2; 3 ])
      shared_seeds

  (* --- preconditioner-kind rows: every registered kind, through the
     scalar, block, sharded and black-box engines, must still reproduce
     the oracle exactly --- *)

  let test_precond_kinds () =
    let module Pc = Kp_precond.Precond in
    List.iter
      (fun seed ->
        let n = List.nth P.sizes (List.length P.sizes - 1) in
        let st = Kp_util.Rng.make seed in
        let a = M.random_nonsingular st n in
        let x_true = Array.init n (fun _ -> F.random st) in
        let b = M.matvec a x_true in
        let det_oracle = G.det a in
        List.iteri
          (fun i kind ->
            let precond = Pc.Forced kind in
            let sts = states (seed + n + (641 * (i + 1))) 6 in
            let what w = Printf.sprintf "%s precond=%s" w (Pc.kind_name kind) in
            (match S.solve ~precond sts.(0) a b with
            | Ok (x, _) ->
              Alcotest.(check bool) (ctx seed n (what "solve = oracle")) true
                (vec_equal x x_true)
            | Error e -> fail_typed seed n (what "solve") e);
            (match S.det ~precond sts.(1) a with
            | Ok (d, _) ->
              Alcotest.(check bool) (ctx seed n (what "det = oracle")) true
                (F.equal d det_oracle)
            | Error e -> fail_typed seed n (what "det") e);
            (match BW.solve ~block_factor:2 ~precond sts.(2) a b with
            | Ok (x, _) ->
              Alcotest.(check bool) (ctx seed n (what "block solve = oracle"))
                true (vec_equal x x_true)
            | Error e -> fail_typed seed n (what "block solve") e);
            (match BW.det ~block_factor:2 ~precond sts.(3) a with
            | Ok (d, _) ->
              Alcotest.(check bool) (ctx seed n (what "block det = oracle"))
                true (F.equal d det_oracle)
            | Error e -> fail_typed seed n (what "block det") e);
            (match S.solve ~shards:3 ~precond sts.(4) a b with
            | Ok (x, _) ->
              Alcotest.(check bool) (ctx seed n (what "sharded solve = oracle"))
                true (vec_equal x x_true)
            | Error e -> fail_typed seed n (what "sharded solve") e);
            match W.solve_preconditioned ~precond sts.(5) (Bb.of_dense a) b with
            | Ok (x, _) ->
              Alcotest.(check bool) (ctx seed n (what "blackbox solve = oracle"))
                true (vec_equal x x_true)
            | Error e -> fail_typed seed n (what "blackbox solve") e)
          Pc.all_kinds)
      shared_seeds

  let tests =
    [
      Alcotest.test_case (P.name ^ " nonsingular") `Quick test_nonsingular;
      Alcotest.test_case (P.name ^ " singular") `Quick test_singular;
      Alcotest.test_case (P.name ^ " block nonsingular") `Quick test_block_nonsingular;
      Alcotest.test_case (P.name ^ " block singular") `Quick test_block_singular;
      Alcotest.test_case (P.name ^ " sharded nonsingular") `Quick test_sharded_nonsingular;
      Alcotest.test_case (P.name ^ " sharded singular") `Quick test_sharded_singular;
      Alcotest.test_case (P.name ^ " precond kinds") `Quick test_precond_kinds;
    ]
end

module Gf97_suite =
  Diff
    (Kp_field.Fields.Gf_97)
    (struct
      let name = "gf97"
      let sizes = [ 3; 5 ]
      let singular_n = 5
    end)

module Ntt_suite =
  Diff
    (Kp_field.Fields.Gf_ntt)
    (struct
      let name = "gf_ntt"
      let sizes = [ 3; 6 ]
      let singular_n = 6
    end)

module Gf2_8 = Test_seeds.Gf2_8

module Gf2_8_suite =
  Diff
    (Gf2_8)
    (struct
      let name = "gf2^8"
      let sizes = [ 3; 5 ]
      let singular_n = 5
    end)

module Q_suite =
  Diff
    (Kp_field.Rational)
    (struct
      let name = "Q"
      let sizes = [ 3; 4 ]
      let singular_n = 4
    end)

(* --- kernel-backend rows: the same engine runs with the dispatch mode
   forced to each kernel family in turn must produce bit-identical
   answers AND identical attempt counts — the end-to-end form of the
   kernel suite's bit-identity contract.  Engine functors are applied
   inside [with_mode] because backend resolution happens at functor
   application time. --- *)
module Mode_rows = struct
  module D = Kp_kernel.Dispatch
  module O = Kp_robust.Outcome

  let modes =
    [
      ("word", D.Word);
      ("cstub", D.Cstub);
      ("bigarray", D.Bigarray_pure);
      ("derived", D.Derived_only);
    ]

  (* GF(p): the full Theorem-4 battery — solve/det with attempt counts,
     rank, a session run, and the Gauss oracle.  Every component is a
     plain int or int array, so runs under different modes compare with
     structural equality. *)
  let gfp_battery mode seed n =
    D.with_mode mode (fun () ->
        let module F = Kp_field.Fields.Gf_ntt in
        let module C = Kp_poly.Conv.Karatsuba (F) in
        let module M = Kp_matrix.Dense.Make (F) in
        let module G = Kp_matrix.Gauss.Make (F) in
        let module S = Kp_core.Solver.Make (F) (C) in
        let module Rk = Kp_core.Rank.Make (F) (C) in
        let module Sess = Kp_session.Session.Make (F) (C) in
        let fail what e =
          Alcotest.failf "gfp battery %s @%s seed=%d n=%d: %s" what
            (D.mode_name mode) seed n (O.error_to_string e)
        in
        let st = Kp_util.Rng.make seed in
        let a = M.random_nonsingular st n in
        let x_true = Array.init n (fun _ -> F.random st) in
        let b = M.matvec a x_true in
        let sts = Test_seeds.states (seed + n) 4 in
        let solve_x, solve_att =
          match S.solve sts.(0) a b with
          | Ok (x, r) -> (x, r.O.attempts)
          | Error e -> fail "solve" e
        in
        let det, det_att =
          match S.det sts.(1) a with
          | Ok (d, r) -> (d, r.O.attempts)
          | Error e -> fail "det" e
        in
        let rank = Rk.rank sts.(2) a in
        let sess = Sess.create sts.(3) in
        let sess_x =
          match Sess.solve sess a b with
          | Ok (x, _) -> x
          | Error e -> fail "session solve" e
        in
        let sess_d =
          match Sess.det sess a with
          | Ok (d, _) -> d
          | Error e -> fail "session det" e
        in
        let gauss_x =
          match G.solve a b with
          | Some x -> x
          | None -> Alcotest.failf "gfp battery: oracle called input singular"
        in
        (solve_x, solve_att, det, det_att, rank, sess_x, sess_d, gauss_x))

  let test_gfp_modes () =
    List.iter
      (fun seed ->
        List.iter
          (fun n ->
            let sx, sa, d, da, rk, zx, zd, gx = gfp_battery D.Word seed n in
            List.iter
              (fun (mname, mode) ->
                let sx', sa', d', da', rk', zx', zd', gx' =
                  gfp_battery mode seed n
                in
                let lbl what =
                  Printf.sprintf "gfp %s: %s = word row (seed=%d n=%d)" mname
                    what seed n
                in
                Alcotest.(check bool) (lbl "solve answer") true (sx = sx');
                Alcotest.(check int) (lbl "solve attempts") sa sa';
                Alcotest.(check int) (lbl "det") d d';
                Alcotest.(check int) (lbl "det attempts") da da';
                Alcotest.(check int) (lbl "rank") rk rk';
                Alcotest.(check bool) (lbl "session solve") true (zx = zx');
                Alcotest.(check int) (lbl "session det") zd zd';
                Alcotest.(check bool) (lbl "gauss solve") true (gx = gx'))
              modes)
          [ 4; 9 ])
      shared_seeds

  (* GF(2): the bit-packed family has no Wiedemann rows in this suite
     (the sample set is too small for the Theorem-4 probability bound),
     so the cross-mode contract is pinned on the kernel-backed matrix
     layer: dense mul/matvec/matmul-shaped products, sparse matvec, and
     the deterministic Gauss solve/det/rank. *)
  let gf2_battery mode seed n =
    D.with_mode mode (fun () ->
        let module F = Kp_field.Gf2 in
        let module M = Kp_matrix.Dense.Make (F) in
        let module Sp = Kp_matrix.Sparse.Make (F) in
        let module G = Kp_matrix.Gauss.Make (F) in
        let st = Kp_util.Rng.make seed in
        let a = M.random st n n in
        let b = M.random st n n in
        let v = Array.init n (fun _ -> F.random st) in
        let sp = Sp.random st n n ~density:0.3 in
        let mul = (M.mul a b).M.data in
        let mv = M.matvec a v in
        let spmv = Sp.matvec sp v in
        let det = G.det a in
        let rank = G.rank a in
        let solve = G.solve a (M.matvec a v) in
        (mul, mv, spmv, det, rank, solve))

  let test_gf2_modes () =
    List.iter
      (fun seed ->
        List.iter
          (fun n ->
            let reference = gf2_battery D.Word seed n in
            List.iter
              (fun (mname, mode) ->
                Alcotest.(check bool)
                  (Printf.sprintf "gf2 %s = word row (seed=%d n=%d)" mname seed
                     n)
                  true
                  (gf2_battery mode seed n = reference))
              modes)
          [ 7; 64; 100 ])
      shared_seeds

  let tests =
    [
      Alcotest.test_case "gfp engines: word/cstub/bigarray/derived rows"
        `Quick test_gfp_modes;
      Alcotest.test_case "gf2 matrix layer: word/cstub/bigarray/derived rows"
        `Quick test_gf2_modes;
    ]
end

(* --- GF(2) track: the extension-field preconditioner ------------------- *)
(* GF(2) sits outside the Theorem-4 probability regime (card(S) = 2 — the
   success bound 1 - 3n²/|S| is vacuous), so these rows are small-n and
   seed-pinned with a generous retry budget.  The contract is Las Vegas:
   every accepted answer must equal the oracle's, and the ext kind's
   escalation ceiling (2^8 instead of 2) must let at least some pinned
   seeds converge at all. *)
module Gf2_track = struct
  module F = Kp_field.Fields.Gf2
  module C = Kp_poly.Conv.Karatsuba (F)
  module M = Kp_matrix.Dense.Make (F)
  module G = Kp_matrix.Gauss.Make (F)
  module Bb = Kp_matrix.Blackbox.Make (F)
  module S = Kp_core.Solver.Make (F) (C)
  module W = Kp_core.Wiedemann.Make (F)
  module O = Kp_robust.Outcome
  module Pc = Kp_precond.Precond

  let pinned_seeds = [ 2; 3; 5; 7; 11; 13; 17; 19 ]
  let n = 4

  let run_kind kind =
    let solved = ref 0 and wrong = ref 0 and bb_solved = ref 0 in
    List.iter
      (fun seed ->
        let st = Kp_util.Rng.make (9000 + seed) in
        let a = M.random_nonsingular st n in
        let x_true = Array.init n (fun _ -> F.random st) in
        let b = M.matvec a x_true in
        (match
           S.solve ~retries:40 ~precond:(Pc.Forced kind)
             (Kp_util.Rng.make (77 * seed)) a b
         with
        | Ok (x, _) ->
          incr solved;
          if not (Array.for_all2 F.equal x x_true) then incr wrong
        | Error _ -> ());
        match
          W.solve_preconditioned ~retries:40 ~precond:(Pc.Forced kind)
            (Kp_util.Rng.make (177 * seed))
            (Bb.of_dense a) b
        with
        | Ok (x, _) ->
          incr bb_solved;
          if not (Array.for_all2 F.equal x x_true) then incr wrong
        | Error _ -> ())
      pinned_seeds;
    (!solved, !bb_solved, !wrong)

  let test_ext () =
    let solved, bb_solved, wrong = run_kind Pc.Ext_field in
    Alcotest.(check int) "gf2 ext: no accepted answer is ever wrong" 0 wrong;
    Alcotest.(check bool)
      (Printf.sprintf "gf2 ext: some pinned seeds converge (%d+%d)" solved
         bb_solved)
      true
      (solved >= 1 && bb_solved >= 1)

  let test_sparse_las_vegas () =
    (* the butterfly over GF(2) itself rarely converges — but when it
       accepts, the answer is right *)
    let _, _, wrong = run_kind Pc.Sparse_butterfly in
    Alcotest.(check int) "gf2 sparse: no accepted answer is ever wrong" 0 wrong

  let tests =
    [
      Alcotest.test_case "gf2 ext-field preconditioner" `Quick test_ext;
      Alcotest.test_case "gf2 sparse: Las Vegas only" `Quick
        test_sparse_las_vegas;
    ]
end

(* --- fuzz: "same matrix, many RHS" session plans --------------------- *)
(* A plan is a mixed sequence of solve/det/inverse questions against ONE
   matrix.  Executed through a session — whatever the order, whatever the
   interleaving — every answer must equal the oracle's: the cache must be
   invisible.  Plans are lists of small int codes, so qcheck's built-in
   list/int shrinking reports a minimal failing plan. *)
module Fuzz = struct
  module F = Kp_field.Fields.Gf_ntt
  module C = Kp_poly.Conv.Karatsuba (F)
  module M = Kp_matrix.Dense.Make (F)
  module G = Kp_matrix.Gauss.Make (F)
  module Sess = Kp_session.Session.Make (F) (C)

  let n = 4
  let k_rhs = 3

  (* codes 0..k_rhs-1: solve that RHS; k_rhs: det; k_rhs+1: inverse *)
  let run_plan seed plan =
    let st = Kp_util.Rng.make (1 + abs seed) in
    let a = M.random_nonsingular st n in
    let bs =
      Array.init k_rhs (fun _ -> Array.init n (fun _ -> F.random st))
    in
    let x_ref = Array.map (fun b -> Option.get (G.solve a b)) bs in
    let det_ref = G.det a in
    let inv_ref = Option.get (G.inverse a) in
    let sess = Sess.create (Kp_util.Rng.make (1000 + abs seed)) in
    List.for_all
      (fun code ->
        if code < k_rhs then
          match Sess.solve sess a bs.(code) with
          | Ok (x, _) -> Array.for_all2 F.equal x x_ref.(code)
          | Error _ -> false
        else if code = k_rhs then
          match Sess.det sess a with
          | Ok (d, _) -> F.equal d det_ref
          | Error _ -> false
        else
          match Sess.inverse sess a with
          | Ok (inv, _) -> M.equal inv inv_ref
          | Error _ -> false)
      plan
    && (Sess.stats sess).Sess.misses <= 1

  let test =
    QCheck.Test.make ~count:25
      ~name:"session plans: mixed solve/det/inverse orders, one cached build"
      QCheck.(
        pair small_int
          (list_of_size Gen.(1 -- 8)
             (int_bound (k_rhs + 1))))
      (fun (seed, plan) -> run_plan seed plan)
end

let () =
  Alcotest.run "differential"
    [
      ("gf97", Gf97_suite.tests);
      ("gf_ntt", Ntt_suite.tests);
      ("gf2^8", Gf2_8_suite.tests);
      ("rational", Q_suite.tests);
      ("kernel_modes", Mode_rows.tests);
      ("gf2_track", Gf2_track.tests);
      ("session_fuzz", [ QCheck_alcotest.to_alcotest ~long:false Fuzz.test ]);
    ]
