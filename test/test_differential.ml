(* Differential suite: the same question asked of every engine that can
   answer it must yield the identical answer — or the identical typed
   rejection.

   For each shared seed we build the same (seed-determined) input and run
   solve / det / inverse / rank / nullspace through

     - the black-box engine (preconditioned Wiedemann, [Kp_core.Wiedemann]),
     - the dense Theorem-4 engine ([Kp_core.Solver] / [Inverse] / [Rank] /
       [Nullspace]),
     - the Gaussian-elimination oracle ([Kp_matrix.Gauss]),

   over four fields: GF(97) (small prime — the clamped-sample-set regime),
   the NTT prime field, GF(2⁸) (characteristic 2 — the Chistov route), and
   Q (characteristic 0, exact rationals).  Answers to these questions are
   unique, so agreement must be exact ([F.equal], no tolerance); nullspaces
   are compared by dimension plus membership, the only well-defined
   comparison between bases. *)

(* the one seed list every field block shares *)
let shared_seeds = [ 3; 17; 92 ]

module type PROFILE = sig
  val name : string

  val sizes : int list
  (** Non-singular test sizes (kept small for the expensive fields). *)

  val singular_n : int
end

module Diff (F : Kp_field.Field_intf.FIELD) (P : PROFILE) = struct
  module C = Kp_poly.Conv.Karatsuba (F)
  module M = Kp_matrix.Dense.Make (F)
  module G = Kp_matrix.Gauss.Make (F)
  module Bb = Kp_matrix.Blackbox.Make (F)
  module S = Kp_core.Solver.Make (F) (C)
  module I = Kp_core.Inverse.Make (F) (C)
  module Rk = Kp_core.Rank.Make (F) (C)
  module Ns = Kp_core.Nullspace.Make (F) (C)
  module W = Kp_core.Wiedemann.Make (F)
  module O = Kp_robust.Outcome

  let vec_equal = Array.for_all2 F.equal

  let ctx seed n what = Printf.sprintf "%s seed=%d n=%d: %s" P.name seed n what

  let fail_typed seed n what e =
    Alcotest.failf "%s" (ctx seed n (what ^ ": " ^ O.error_to_string e))

  (* engines draw their randomness from states split off one seed-derived
     root, so the whole case is a deterministic function of (field, seed) *)
  let states seed k =
    let root = Kp_util.Rng.make seed in
    Array.init k (fun _ -> Kp_util.Rng.split root)

  let test_nonsingular () =
    List.iter
      (fun seed ->
        List.iter
          (fun n ->
            let st = Kp_util.Rng.make seed in
            let a = M.random_nonsingular st n in
            let x_true = Array.init n (fun _ -> F.random st) in
            let b = M.matvec a x_true in
            let sts = states (seed + n) 8 in
            (* solve — the unique solution, bit-identical on all engines *)
            (match G.solve a b with
            | Some x -> Alcotest.(check bool) (ctx seed n "gauss solve") true (vec_equal x x_true)
            | None -> Alcotest.failf "%s" (ctx seed n "gauss oracle called the matrix singular"));
            (match S.solve sts.(0) a b with
            | Ok (x, _) ->
              Alcotest.(check bool) (ctx seed n "dense solve = oracle") true (vec_equal x x_true)
            | Error e -> fail_typed seed n "dense solve" e);
            (match W.solve_preconditioned sts.(1) (Bb.of_dense a) b with
            | Ok (x, _) ->
              Alcotest.(check bool) (ctx seed n "blackbox solve = oracle") true (vec_equal x x_true)
            | Error e -> fail_typed seed n "blackbox solve" e);
            (* det *)
            let det_oracle = G.det a in
            (match S.det sts.(2) a with
            | Ok (d, _) ->
              Alcotest.(check bool) (ctx seed n "dense det = oracle") true (F.equal d det_oracle)
            | Error e -> fail_typed seed n "dense det" e);
            (match W.det sts.(3) (Bb.of_dense a) with
            | Ok (d, _) ->
              Alcotest.(check bool) (ctx seed n "blackbox det = oracle") true (F.equal d det_oracle)
            | Error e -> fail_typed seed n "blackbox det" e);
            (* inverse — both Theorem-6 routes against the oracle *)
            (match G.inverse a with
            | None -> Alcotest.failf "%s" (ctx seed n "gauss oracle failed to invert")
            | Some inv_oracle ->
              (match I.inverse sts.(4) a with
              | Ok (inv, _) ->
                Alcotest.(check bool) (ctx seed n "baur-strassen inverse = oracle") true
                  (M.equal inv inv_oracle)
              | Error e -> fail_typed seed n "baur-strassen inverse" e);
              (match I.inverse_via_solves sts.(5) a with
              | Ok (inv, _) ->
                Alcotest.(check bool) (ctx seed n "n-solves inverse = oracle") true
                  (M.equal inv inv_oracle)
              | Error e -> fail_typed seed n "n-solves inverse" e));
            (* rank *)
            Alcotest.(check int) (ctx seed n "rank = oracle") (G.rank a) (Rk.rank sts.(6) a);
            (* nullspace of a non-singular matrix is trivial *)
            (match Ns.nullspace sts.(7) a with
            | Ok [] -> ()
            | Ok basis ->
              Alcotest.failf "%s" (ctx seed n (Printf.sprintf
                   "nullspace returned %d vectors for a non-singular matrix"
                   (List.length basis)))
            | Error e -> fail_typed seed n "nullspace" e))
          P.sizes)
      shared_seeds

  let test_singular () =
    List.iter
      (fun seed ->
        let n = P.singular_n in
        let r = n - 2 in
        let st = Kp_util.Rng.make seed in
        let a = M.random_of_rank st n ~rank:r in
        let xs = Array.init n (fun _ -> F.random st) in
        let b = M.matvec a xs in
        let sts = states (seed + n) 8 in
        Alcotest.(check bool) (ctx seed n "oracle sees singular") true (G.is_singular a);
        (* solve: the dense engine must reject with the typed singularity
           witness the oracle's verdict corresponds to *)
        (match S.solve sts.(0) a b with
        | Error (O.Singular _) -> ()
        | Ok _ -> Alcotest.failf "%s" (ctx seed n "dense solve accepted a singular system")
        | Error e -> fail_typed seed n "dense solve (expected Singular)" e);
        (* det: zero everywhere, as an answer (with witness), not an error *)
        Alcotest.(check bool) (ctx seed n "oracle det = 0") true (F.is_zero (G.det a));
        (match S.det sts.(1) a with
        | Ok (d, _) -> Alcotest.(check bool) (ctx seed n "dense det = 0") true (F.is_zero d)
        | Error e -> fail_typed seed n "dense det" e);
        (match W.det sts.(2) (Bb.of_dense a) with
        | Ok (d, _) -> Alcotest.(check bool) (ctx seed n "blackbox det = 0") true (F.is_zero d)
        | Error e -> fail_typed seed n "blackbox det" e);
        (* inverse: common typed rejection *)
        (match G.inverse a with
        | Some _ -> Alcotest.failf "%s" (ctx seed n "gauss oracle inverted a singular matrix")
        | None -> ());
        (match I.inverse sts.(3) a with
        | Error (O.Singular _) -> ()
        | Ok _ -> Alcotest.failf "%s" (ctx seed n "inverse accepted a singular matrix")
        | Error e -> fail_typed seed n "inverse (expected Singular)" e);
        (* rank *)
        Alcotest.(check int) (ctx seed n "oracle rank = construction") r (G.rank a);
        Alcotest.(check int) (ctx seed n "rank = oracle") r (Rk.rank sts.(4) a);
        (* nullspace: same dimension as the oracle's, every vector a member *)
        (match Ns.nullspace sts.(5) a with
        | Ok basis ->
          Alcotest.(check int) (ctx seed n "nullspace dimension = oracle")
            (List.length (G.nullspace a))
            (List.length basis);
          List.iter
            (fun v ->
              Alcotest.(check bool) (ctx seed n "nullspace vector satisfies A·v = 0") true
                (Array.for_all F.is_zero (M.matvec a v)))
            basis
        | Error e -> fail_typed seed n "nullspace" e);
        (* singular solve: a solution of the consistent system, verified *)
        (match Ns.solve_singular sts.(6) a b with
        | Ok (Some x) ->
          Alcotest.(check bool) (ctx seed n "singular solve satisfies A·x = b") true
            (vec_equal (M.matvec a x) b)
        | Ok None ->
          Alcotest.failf "%s" (ctx seed n "singular solve called a consistent system inconsistent")
        | Error e -> fail_typed seed n "singular solve" e))
      shared_seeds

  let tests =
    [
      Alcotest.test_case (P.name ^ " nonsingular") `Quick test_nonsingular;
      Alcotest.test_case (P.name ^ " singular") `Quick test_singular;
    ]
end

module Gf97_suite =
  Diff
    (Kp_field.Fields.Gf_97)
    (struct
      let name = "gf97"
      let sizes = [ 3; 5 ]
      let singular_n = 5
    end)

module Ntt_suite =
  Diff
    (Kp_field.Fields.Gf_ntt)
    (struct
      let name = "gf_ntt"
      let sizes = [ 3; 6 ]
      let singular_n = 6
    end)

module Gf2_8 = Kp_field.Gfext.Make (struct
  let p = 2
  let k = 8
  let seed = 11
end)

module Gf2_8_suite =
  Diff
    (Gf2_8)
    (struct
      let name = "gf2^8"
      let sizes = [ 3; 5 ]
      let singular_n = 5
    end)

module Q_suite =
  Diff
    (Kp_field.Rational)
    (struct
      let name = "Q"
      let sizes = [ 3; 4 ]
      let singular_n = 4
    end)

let () =
  Alcotest.run "differential"
    [
      ("gf97", Gf97_suite.tests);
      ("gf_ntt", Ntt_suite.tests);
      ("gf2^8", Gf2_8_suite.tests);
      ("rational", Q_suite.tests);
    ]
