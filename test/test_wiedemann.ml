(* Black-box Wiedemann (the §2 sequential instantiation) and the
   counting↔circuit cross-validation: the two measurement instruments of
   the experiment harness must agree with each other and with the dense
   oracles. *)

module F = Kp_field.Fields.Gf_ntt
module M = Kp_matrix.Dense.Make (F)
module G = Kp_matrix.Gauss.Make (F)
module Sp = Kp_matrix.Sparse.Make (F)
module Bb = Kp_matrix.Blackbox.Make (F)
module W = Kp_core.Wiedemann.Make (F)
module Lev = Kp_structured.Leverrier.Make (F)
module CK = Kp_poly.Conv.Karatsuba (F)
module SPc = Kp_precond.Precond.Make (F) (CK)
module TCF = Kp_structured.Toeplitz_charpoly.Make (F) (CK)

(* the pure Hankel operator H(h) as a black box, reconstructed through the
   preconditioner layer with a unit diagonal — the regression targets below
   (non-zero ops accounting, dense agreement) now pin the precond record *)
let hankel_blackbox ~n h =
  let p =
    SPc.hankel_diag
      ~ops_per_apply:(lazy (SPc.hankel_ops_per_apply n))
      ~charpoly:(fun ~n d -> TCF.charpoly ~n d)
      ~n ~h ~d:(Array.make n F.one) ()
  in
  W.precond_blackbox p
module TC = Kp_structured.Toeplitz_charpoly.Make (F) (CK)
module TZ = Kp_structured.Toeplitz.Make (F) (CK)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let st0 k = Kp_util.Rng.make (9000 + k)
let farr_eq a b = Array.length a = Array.length b && Array.for_all2 F.equal a b

let test_solve_dense_blackbox () =
  let st = st0 1 in
  for _ = 1 to 8 do
    let n = 2 + Random.State.int st 14 in
    let a = M.random_nonsingular st n in
    let x_true = Array.init n (fun _ -> F.random st) in
    let b = M.matvec a x_true in
    match W.solve st (Bb.of_dense a) b with
    | Ok (x, _) -> check_bool "solution" true (farr_eq x x_true)
    | Error e -> Alcotest.fail (W.O.error_to_string e)
  done

let test_solve_sparse_blackbox () =
  let st = st0 2 in
  for _ = 1 to 5 do
    let n = 20 + Random.State.int st 40 in
    let s = Sp.random_nonsingular st n ~density:0.1 in
    let x_true = Array.init n (fun _ -> F.random st) in
    let b = Sp.matvec s x_true in
    match W.solve st (Bb.of_sparse s) b with
    | Ok (x, _) -> check_bool "sparse solution" true (farr_eq x x_true)
    | Error e -> Alcotest.fail (W.O.error_to_string e)
  done

let test_solve_composed_blackbox () =
  let st = st0 3 in
  let n = 15 in
  let a1 = M.random_nonsingular st n and a2 = M.random_nonsingular st n in
  let bb = Bb.compose (Bb.of_dense a1) (Bb.of_dense a2) in
  let x_true = Array.init n (fun _ -> F.random st) in
  let b = bb.Bb.apply x_true in
  match W.solve st bb b with
  | Ok (x, _) -> check_bool "product blackbox" true (farr_eq x x_true)
  | Error e -> Alcotest.fail (W.O.error_to_string e)

let test_det_blackbox () =
  let st = st0 4 in
  for _ = 1 to 8 do
    let n = 2 + Random.State.int st 10 in
    let a = M.random st n n in
    match W.det st (Bb.of_dense a) with
    | Ok (d, _) -> check_bool "det = Gauss" true (F.equal d (G.det a))
    | Error e -> Alcotest.fail (W.O.error_to_string e)
  done

let test_det_singular_blackbox () =
  let st = st0 5 in
  for _ = 1 to 4 do
    let n = 4 + Random.State.int st 5 in
    let a = M.random_of_rank st n ~rank:(n - 1) in
    match W.det st (Bb.of_dense a) with
    | Ok (d, _) -> check_bool "det 0 certified" true (F.is_zero d)
    | Error _ -> Alcotest.fail "singular det should certify zero"
  done

let test_minpoly_is_dense_minpoly () =
  let st = st0 6 in
  for _ = 1 to 6 do
    let n = 2 + Random.State.int st 8 in
    let a = M.random_nonsingular st n in
    let f = W.minimal_polynomial st (Bb.of_dense a) in
    (* f must annihilate A when it has full degree (equals charpoly) *)
    if Array.length f = n + 1 then begin
      let s = Lev.power_sums_of_dense ~mul:M.mul a in
      let cp = Lev.newton_identities ~n s in
      check_bool "minpoly = charpoly at full degree" true (farr_eq f cp)
    end
  done

let test_singularity_certificate () =
  let st = st0 7 in
  let hits = ref 0 in
  for _ = 1 to 5 do
    let n = 5 + Random.State.int st 5 in
    let sing = M.random_of_rank st n ~rank:(n - 1) in
    if W.is_probably_singular st (Bb.of_dense sing) then incr hits;
    let nonsing = M.random_nonsingular st n in
    (* one-sided: must never claim a non-singular matrix singular *)
    check_bool "no false positives" false
      (W.is_probably_singular st (Bb.of_dense nonsing))
  done;
  check_bool "detects singular most of the time" true (!hits >= 4)

(* ---- Toeplitz solve (public §3 API) ---- *)

let test_toeplitz_solve () =
  let st = st0 8 in
  for _ = 1 to 10 do
    let n = 1 + Random.State.int st 12 in
    let d = Array.init ((2 * n) - 1) (fun _ -> F.random st) in
    let dense = TZ.to_dense ~n d in
    match G.solve dense (Array.init n (fun _ -> F.random st)) with
    | None -> () (* singular draw; skip *)
    | Some _ ->
      let x_true = Array.init n (fun _ -> F.random st) in
      let b = M.matvec dense x_true in
      let x = TC.solve ~n d b in
      check_bool "Toeplitz CH solve" true (farr_eq x x_true)
  done

let test_toeplitz_solve_singular_raises () =
  (* the all-ones Toeplitz matrix is singular for n >= 2 *)
  let n = 4 in
  let d = Array.make ((2 * n) - 1) F.one in
  check_bool "singular raises" true
    (try ignore (TC.solve ~n d (Array.make n F.one)); false
     with Division_by_zero -> true)

(* ---- ops accounting (regression: hankel_blackbox used to report 0) ---- *)

let test_hankel_ops_nonzero () =
  let st = st0 11 in
  List.iter
    (fun n ->
      let h = Array.init ((2 * n) - 1) (fun _ -> F.random st) in
      let bb = hankel_blackbox ~n h in
      check_int "dim" n bb.Bb.dim;
      check_bool
        (Printf.sprintf "hankel ops_per_apply > 0 (n=%d)" n)
        true (bb.Bb.ops_per_apply > 0);
      (* and it is at least the trivial lower bound: n outputs each touch
         some inputs; Karatsuba convolution is superlinear in n *)
      check_bool "ops >= n" true (bb.Bb.ops_per_apply >= n))
    [ 1; 2; 5; 16 ]

let test_ops_accounting_additive () =
  let st = st0 12 in
  let n = 9 in
  let a1 = M.random_nonsingular st n and a2 = M.random_nonsingular st n in
  let b1 = Bb.of_dense a1 and b2 = Bb.of_dense a2 in
  check_bool "dense bb charges ops" true (b1.Bb.ops_per_apply > 0);
  let prod = Bb.compose b1 b2 in
  check_int "compose sums component costs"
    (b1.Bb.ops_per_apply + b2.Bb.ops_per_apply)
    prod.Bb.ops_per_apply;
  let d = Array.init n (fun _ -> F.random st) in
  let scaled = Bb.scale_columns prod d in
  check_int "scale_columns adds one mul per column"
    (prod.Bb.ops_per_apply + n)
    scaled.Bb.ops_per_apply;
  (* the preconditioned operator A·H(h)·D therefore has a nonzero summed
     cost even though H is applied by convolution, not a stored matrix *)
  let h = Array.init ((2 * n) - 1) (fun _ -> F.random st) in
  let pre = Bb.scale_columns (Bb.compose b1 (hankel_blackbox ~n h)) d in
  check_bool "preconditioned cost > dense alone" true
    (pre.Bb.ops_per_apply > b1.Bb.ops_per_apply)

let test_hankel_blackbox_matches_dense () =
  (* the instrumented Hankel black box must still be the Hankel matrix *)
  let st = st0 13 in
  let n = 7 in
  let h = Array.init ((2 * n) - 1) (fun _ -> F.random st) in
  let bb = hankel_blackbox ~n h in
  let dense = M.init n n (fun i j -> h.(i + j)) in
  let x = Array.init n (fun _ -> F.random st) in
  check_bool "matvec agrees" true (farr_eq (bb.Bb.apply x) (M.matvec dense x));
  match bb.Bb.apply_transpose with
  | None -> ()
  | Some at ->
    (* Hankel matrices are symmetric, so Aᵀx = Ax *)
    check_bool "transpose agrees (symmetric)" true
      (farr_eq (at x) (M.matvec dense x))

let test_solve_preconditioned_with_counters () =
  let module Counter = Kp_obs.Counter in
  let st = st0 14 in
  let n = 12 in
  let a = M.random_nonsingular st n in
  let x_true = Array.init n (fun _ -> F.random st) in
  let b = M.matvec a x_true in
  let before name = Option.value ~default:0 (Counter.find name) in
  let applies0 = before "blackbox.applies" in
  let ops0 = before "blackbox.ops" in
  let attempts0 = before "wiedemann.attempts" in
  match W.solve_preconditioned st (Bb.of_dense a) b with
  | Error e -> Alcotest.fail (W.O.error_to_string e)
  | Ok (x, report) ->
    let attempts = report.W.O.attempts in
    check_bool "preconditioned solution" true (farr_eq x x_true);
    check_bool "attempts >= 1" true (attempts >= 1);
    check_bool "blackbox applies counted" true
      (before "blackbox.applies" > applies0);
    check_bool "blackbox ops counted" true (before "blackbox.ops" > ops0);
    check_int "wiedemann attempts counted" (attempts0 + attempts)
      (before "wiedemann.attempts")

(* ---- cross-validation: counting field vs circuit size ---- *)

let test_counting_equals_circuit_size () =
  (* the same straight-line functor, instrumented two ways, must agree:
     ops counted by the Counting wrapper = arithmetic gates of the traced
     circuit (constants are free on both sides) *)
  let module Cnt = Kp_field.Counting.Make (F) in
  let module CCK = Kp_poly.Conv.Karatsuba (Cnt) in
  let module CTC = Kp_structured.Toeplitz_charpoly.Make (Cnt) (CCK) in
  let st = st0 9 in
  List.iter
    (fun n ->
      let d = Array.init ((2 * n) - 1) (fun _ -> F.random st) in
      (* counting *)
      Cnt.reset ();
      let _, ops =
        Cnt.measure (fun () -> ignore (CTC.charpoly ~n (Array.map Cnt.of_int d)))
      in
      let counted = Kp_field.Counting.total ops in
      (* tracing *)
      let module B = Kp_circuit.Circuit.Builder () in
      let module BCK = Kp_poly.Conv.Karatsuba (B) in
      let module BTC = Kp_structured.Toeplitz_charpoly.Make (B) (BCK) in
      let inputs = Array.map (fun _ -> B.fresh_input ()) d in
      let cp = BTC.charpoly ~n inputs in
      B.finish ~outputs:cp;
      let stats = Kp_circuit.Circuit.stats B.circuit in
      check_int
        (Printf.sprintf "ops = gates (n=%d)" n)
        counted stats.Kp_circuit.Circuit.size)
    [ 2; 4; 7 ]

let test_traced_charpoly_evaluates_correctly () =
  (* the traced circuit, replayed over the concrete field, must equal the
     directly computed characteristic polynomial *)
  let st = st0 10 in
  let n = 6 in
  let d = Array.init ((2 * n) - 1) (fun _ -> F.random st) in
  let module B = Kp_circuit.Circuit.Builder () in
  let module BCK = Kp_poly.Conv.Karatsuba (B) in
  let module BTC = Kp_structured.Toeplitz_charpoly.Make (B) (BCK) in
  let inputs = Array.map (fun _ -> B.fresh_input ()) d in
  let cp = BTC.charpoly ~n inputs in
  B.finish ~outputs:cp;
  let replayed =
    Kp_circuit.Circuit.eval (module F) B.circuit ~inputs:d ~randoms:[||]
  in
  let direct = TC.charpoly ~n d in
  check_bool "replay = direct" true (farr_eq replayed direct)

let () =
  Alcotest.run "kp_wiedemann"
    [
      ( "blackbox",
        [
          Alcotest.test_case "solve (dense bb)" `Quick test_solve_dense_blackbox;
          Alcotest.test_case "solve (sparse bb)" `Quick test_solve_sparse_blackbox;
          Alcotest.test_case "solve (composed bb)" `Quick test_solve_composed_blackbox;
          Alcotest.test_case "det" `Quick test_det_blackbox;
          Alcotest.test_case "det singular" `Quick test_det_singular_blackbox;
          Alcotest.test_case "min poly" `Quick test_minpoly_is_dense_minpoly;
          Alcotest.test_case "singularity certificate" `Quick test_singularity_certificate;
        ] );
      ( "ops-accounting",
        [
          Alcotest.test_case "hankel ops nonzero" `Quick test_hankel_ops_nonzero;
          Alcotest.test_case "compose/scale additive" `Quick test_ops_accounting_additive;
          Alcotest.test_case "hankel bb = dense Hankel" `Quick test_hankel_blackbox_matches_dense;
          Alcotest.test_case "preconditioned solve + counters" `Quick
            test_solve_preconditioned_with_counters;
        ] );
      ( "toeplitz-solve",
        [
          Alcotest.test_case "solve" `Quick test_toeplitz_solve;
          Alcotest.test_case "singular raises" `Quick test_toeplitz_solve_singular_raises;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "counting = circuit size" `Quick test_counting_equals_circuit_size;
          Alcotest.test_case "traced charpoly replays" `Quick test_traced_charpoly_evaluates_correctly;
        ] );
    ]
