(* Experiment harness: regenerates every "table" of the paper — its
   complexity and probability claims (the paper is a theory paper; each
   theorem/estimate becomes one experiment, per DESIGN.md §4).

     E1  Theorem 4   work O(n^ω log n): ops(solver)/ops(matmul) ~ log n
     E2  Theorem 4   depth O((log n)²) of the traced circuit
     E3  Estimate(2) failure probability ≤ 3n²/card(S)
     E4  Theorem 5/6 Baur–Strassen: |Q| ≤ 4|P|, depth(Q) = O(depth(P))
     E5  Theorem 3   Toeplitz charpoly size, multiplier-relative
     E6  §5 (12)     any-characteristic route costs a factor ~n
     E7  §4          transposed solve ≤ 4× solve
     E8  §5          rank / nullspace / singular solve / least squares
     E9  intro       wall-clock: practicality of the classical-multiplier
                     instantiation; sparse black-box crossover; multicore
     E13 §2/§3       solve sessions: k solves of one matrix, fresh vs the
                     cached RHS-independent prefix (charpoly computed once)
     E14 kernel      bulk vector-kernel layer: word-level GF(p) loops vs the
                     scalar abstract-field path, bit-identical by assertion
     E15 serve       kp serve under load: concurrent clients, typed overload
                     shedding at queue_limit 0, breaker demotion and
                     re-promotion under fault injection; every admitted
                     answer client-side re-verified (KP_SERVE_SOCKET aims
                     the load segment at an external daemon)
     E16 block       block Wiedemann: Krylov phase of the blocked engine
                     (σ ≈ 2n/b products of n×n by n×b) vs the scalar
                     engine's doubling and sequential Krylov phases,
                     answers asserted identical
     E17 shard       row-block sharded blackbox engine: dense and sparse
                     matvec fanned over a 4-domain pool at s ∈ {1, 2, 4}
                     shards, plus one certified block-Wiedemann solve per
                     shard count — every answer asserted bit-identical to
                     the unsharded reference before a row is printed
     E18 cstub       Bigarray/C-stub kernel family: dense matvec/matmul over
                     GF(p) and GF(2) through the C stubs vs the pure-OCaml
                     Bigarray fallback vs the word backends vs derived,
                     outputs asserted bit-identical across all four
     E19 precond     preconditioner kinds on sparse GF(2) operators: field
                     ops per apply (counting field) of the dense H·D vs the
                     butterfly vs the GF(2^8) extension butterfly across a
                     density sweep — asserts the sparse kinds are cheaper
                     per apply and that the gap widens with n

   Tables E1..E17 run with the kernel dispatcher pinned to the word
   backends (their committed baselines gate kernel.gfp_word/... counter
   names); E18 forces each family explicitly per measurement.

   Usage:  dune exec bench/main.exe --
             [--table E1 ... | all] [--fast] [--json FILE]

   --json FILE captures the per-table STATS records (one-line JSON: label,
   wall-clock seconds, observability counters, span timings) into FILE as a
   kp-bench/1 run file; bench/compare.exe diffs two such files.  Unknown
   --table names (anything outside E1..E19) are a usage error (exit 2).  *)

module F = Kp_field.Fields.Gf_ntt
module Cnt = Kp_field.Counting.Make (F)
module Counting = Kp_field.Counting
module Tables = Kp_util.Tables

(* Pin every functor application below (and thus tables E1..E17) to the
   PR-5 word backends regardless of KP_KERNEL_BACKEND: the committed
   BENCH_PR3..PR8 baselines gate per-backend counter names
   (kernel.gfp_word, ...), so the legacy tables must keep producing them.
   E18 is the Bigarray/C-stub family's own table; it forces each mode
   explicitly per measurement. *)
let () = Kp_kernel.Dispatch.set_mode Kp_kernel.Dispatch.Word

(* concrete modules — conv multipliers dispatch on F.kernel_hint (word-level
   GF(p) loops for Gf_ntt); the counting instantiations below stay on the
   derived-kernel functors *)
module CK = Kp_poly.Conv.Karatsuba_field (F)
module NK = Kp_poly.Conv.Ntt_field (F) (Kp_poly.Conv.Default_ntt_prime)
module M = Kp_matrix.Dense.Make (F)
module G = Kp_matrix.Gauss.Make (F)
module Slv = Kp_core.Solver.Make (F) (CK)
module SlvN = Kp_core.Solver.Make (F) (NK)
module P = Kp_core.Pipeline.Make (F) (CK)
module Inv = Kp_core.Inverse.Make (F) (CK)
module Tr = Kp_core.Transpose.Make (F) (CK)
module Rk = Kp_core.Rank.Make (F) (CK)
module Ns = Kp_core.Nullspace.Make (F) (CK)
module TZ = Kp_structured.Toeplitz.Make (F) (CK)
module Sess = Kp_session.Session.Make (F) (CK)
module BW = Kp_core.Block_wiedemann.Make (F) (CK)
module Sp = Kp_matrix.Sparse.Make (F)
module Shd = Kp_shard.Sharded.Make (F)

(* counting modules — both multipliers *)
module CCK = Kp_poly.Conv.Karatsuba (Cnt)
module NCK = Kp_poly.Conv.Ntt_generic (Cnt) (Kp_poly.Conv.Default_ntt_prime)
module CM = Kp_matrix.Dense.Make (Cnt)
module CG = Kp_matrix.Gauss.Make (Cnt)
module CP = Kp_core.Pipeline.Make (Cnt) (CCK)
module CPN = Kp_core.Pipeline.Make (Cnt) (NCK)
module CLev = Kp_structured.Leverrier.Make (Cnt)
module CTC = Kp_structured.Toeplitz_charpoly.Make (Cnt) (CCK)
module CTCN = Kp_structured.Toeplitz_charpoly.Make (Cnt) (NCK)
module CCh = Kp_structured.Chistov.Make (Cnt) (CCK)
module CChN = Kp_structured.Chistov.Make (Cnt) (NCK)

module Cc = Kp_circuit.Circuit
module AD = Kp_circuit.Autodiff

let fast = ref false
let st () = Kp_util.Rng.make 31337

(* monotonic wall-clock helpers straight off Kp_obs.Clock (the old
   Kp_util.Timing wrappers are retired) *)
let time f =
  let t0 = Kp_obs.Clock.now_s () in
  let x = f () in
  (x, Kp_obs.Clock.now_s () -. t0)

let best_of k f =
  assert (k >= 1);
  let x, t = time f in
  let best = ref t in
  for _ = 2 to k do
    let _, t = time f in
    if t < !best then best := t
  done;
  (x, !best)

(* expose the counting field's tallies to the observability exporter *)
let () = Cnt.register_gauges ~prefix:"field" ()

let log2 n = log (float_of_int n) /. log 2.

let measure_ops f =
  let _, c = Cnt.measure f in
  Counting.total c

(* ------------------------------------------------------------------ *)
(* E1: processor efficiency — ops(KP solve) vs ops(one matrix product)  *)
(* ------------------------------------------------------------------ *)

let e1 () =
  let st = st () in
  print_endline
    "E1 (Theorem 4): total work = [matrix-product part, O(n^3 log n) with \
     the classical multiplier]\n\
    \ + [Toeplitz/charpoly engine, O~(n^2), asymptotically negligible].\n\
     Claims: mm-part/matmul ~ c*log n; engine/(n^2 log n) ~ const;\n\
    \ Gauss/matmul ~ const (processor-optimal sequential);\n\
    \ Csanky/matmul ~ n (the 'factor of almost n' the paper eliminates).\n";
  let t =
    Tables.create ~title:"field operations, one solve attempt, NTT multiplier"
      ~columns:
        [ "n"; "matmul"; "KP total"; "KP mm-part"; "mm-part/mm"; "/(log 2n)";
          "engine"; "engine/(n^2 log n)"; "gauss/mm"; "csanky/mm/n" ]
  in
  let sizes = if !fast then [ 8; 16; 24; 32 ] else [ 8; 16; 24; 32; 48; 64 ] in
  List.iter
    (fun n ->
      let a = CM.random st n n and b0 = CM.random st n n in
      let mm = measure_ops (fun () -> ignore (CM.mul a b0)) in
      let rhs = Array.init n (fun _ -> Cnt.random st) in
      (* one KP attempt, split into the Krylov/matrix-product phase and the
         Toeplitz-engine phase *)
      let rec attempt k =
        if k > 5 then (0, 0)
        else begin
          let card_s = max (12 * n * n) 64 in
          let h = Array.init ((2 * n) - 1) (fun _ -> Cnt.sample st ~card_s) in
          let d = Array.init n (fun _ -> Cnt.sample st ~card_s) in
          let u = Array.init n (fun _ -> Cnt.sample st ~card_s) in
          match
            let mm_ops = ref 0 and cols = ref None and seq = ref [||] in
            mm_ops :=
              measure_ops (fun () ->
                  let p =
                    CPN.precond_of ~charpoly:CPN.charpoly_leverrier ~n ~h ~d
                  in
                  let a_tilde = CPN.preconditioned a p in
                  let c = CPN.K.columns ~mul:CPN.M.mul a_tilde rhs (2 * n) in
                  cols := Some c;
                  seq := CPN.K.sequence ~u c);
            let engine_ops =
              measure_ops (fun () ->
                  let f =
                    CPN.minimal_generator ~charpoly:CPN.charpoly_leverrier
                      ~strategy:CPN.Sequential ~n !seq
                  in
                  ignore (CPN.det_hd ~charpoly:CPN.charpoly_leverrier ~n ~h ~d);
                  ignore f)
            in
            (!mm_ops, engine_ops)
          with
          | exception Division_by_zero -> attempt (k + 1)
          | pair -> pair
        end
      in
      let mm_part, engine = attempt 1 in
      let gauss = measure_ops (fun () -> ignore (CG.solve a rhs)) in
      let csanky =
        measure_ops (fun () ->
            let s = CLev.power_sums_of_dense ~mul:CM.mul a in
            ignore (CLev.newton_identities ~n s))
      in
      let fn = float_of_int in
      Tables.add_row t
        [
          string_of_int n;
          Tables.fmt_int mm;
          Tables.fmt_int (mm_part + engine);
          Tables.fmt_int mm_part;
          Printf.sprintf "%.2f" (fn mm_part /. fn mm);
          Printf.sprintf "%.2f" (fn mm_part /. fn mm /. log2 (2 * n));
          Tables.fmt_int engine;
          Printf.sprintf "%.1f" (fn engine /. (fn (n * n) *. log2 n));
          Printf.sprintf "%.2f" (fn gauss /. fn mm);
          Printf.sprintf "%.2f" (fn csanky /. fn mm /. fn n);
        ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E2: parallel time — depth of the traced Theorem-4 circuit            *)
(* ------------------------------------------------------------------ *)

let gauss_det_circuit n =
  (* pivot-free elimination circuit: the classical O(n)-depth comparator *)
  let module B = Cc.Builder () in
  let m = Array.init n (fun _ -> Array.init n (fun _ -> B.fresh_input ())) in
  let det = ref B.one in
  for k = 0 to n - 1 do
    det := B.mul !det m.(k).(k);
    if k < n - 1 then begin
      let piv_inv = B.inv m.(k).(k) in
      for i = k + 1 to n - 1 do
        let factor = B.mul m.(i).(k) piv_inv in
        for j = k + 1 to n - 1 do
          m.(i).(j) <- B.sub m.(i).(j) (B.mul factor m.(k).(j))
        done
      done
    end
  done;
  B.finish ~outputs:[| !det |];
  B.circuit

let e2 () =
  let t =
    Tables.create
      ~title:
        "E2 (Theorem 4) circuit depth; claim: KP depth/(log n)^2 ~ const \
         while elimination depth ~ c*n"
      ~columns:
        [ "n"; "KP size"; "KP depth"; "depth/(log n)^2"; "gauss depth";
          "gauss depth/n" ]
  in
  let sizes = if !fast then [ 4; 8; 16 ] else [ 4; 8; 16; 24; 32 ] in
  List.iter
    (fun n ->
      let c = Inv.det_circuit ~n ~charpoly:`Leverrier in
      let s = Cc.stats c in
      let g = Cc.stats (gauss_det_circuit n) in
      Tables.add_row t
        [
          string_of_int n;
          Tables.fmt_int s.Cc.size;
          string_of_int s.Cc.depth;
          Printf.sprintf "%.2f" (float_of_int s.Cc.depth /. (log2 n ** 2.));
          string_of_int g.Cc.depth;
          Printf.sprintf "%.2f" (float_of_int g.Cc.depth /. float_of_int n);
        ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E3: failure probability vs the 3n²/card(S) bound                     *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let st = st () in
  let t =
    Tables.create
      ~title:
        "E3 (estimate (2)) single-attempt failure rate on non-singular \
         inputs; claim: rate <= 3n^2/card(S)"
      ~columns:[ "n"; "card(S)"; "bound 3n^2/s"; "trials"; "failures"; "rate" ]
  in
  let trials = if !fast then 150 else 400 in
  let sizes = if !fast then [ 6 ] else [ 6; 10 ] in
  List.iter
    (fun n ->
      List.iter
        (fun mult ->
          let card_s = mult * 3 * n * n in
          let bound = 3. *. float_of_int (n * n) /. float_of_int card_s in
          let failures = ref 0 in
          for _ = 1 to trials do
            let a = M.random_nonsingular st n in
            let x_true = Array.init n (fun _ -> F.random st) in
            let b = M.matvec a x_true in
            let h = Array.init ((2 * n) - 1) (fun _ -> F.sample st ~card_s) in
            let d = Array.init n (fun _ -> F.sample st ~card_s) in
            let u = Array.init n (fun _ -> F.sample st ~card_s) in
            match
              let p = P.precond_of ~charpoly:P.charpoly_leverrier ~n ~h ~d in
              P.solve ~charpoly:P.charpoly_leverrier ~strategy:P.Sequential a
                ~b ~p ~u
            with
            | exception Division_by_zero -> incr failures
            | { P.x; _ } ->
              if not (Array.for_all2 F.equal x x_true) then incr failures
          done;
          Tables.add_row t
            [
              string_of_int n;
              string_of_int card_s;
              Printf.sprintf "%.4f" bound;
              string_of_int trials;
              string_of_int !failures;
              Printf.sprintf "%.4f" (float_of_int !failures /. float_of_int trials);
            ])
        [ 1; 4; 16; 64 ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E4: Baur–Strassen length and depth ratios                            *)
(* ------------------------------------------------------------------ *)

let e4 () =
  let t =
    Tables.create
      ~title:
        "E4 (Theorems 5/6) derivative circuit of the determinant circuit; \
         claim: size ratio <= 4, depth ratio O(1), divisions <= 2x; the \
         simplified columns apply DCE+CSE to both circuits first"
      ~columns:
        [ "n"; "|P|"; "|Q|"; "size ratio"; "simplified ratio"; "d(P)"; "d(Q)";
          "depth ratio"; "div P"; "div Q" ]
  in
  let sizes = if !fast then [ 4; 8 ] else [ 4; 8; 12; 16 ] in
  List.iter
    (fun n ->
      let p = Inv.det_circuit ~n ~charpoly:`Leverrier in
      let { AD.circuit = q; _ } = AD.differentiate p in
      let sp = Cc.stats p and sq = Cc.stats q in
      let sp' = Cc.stats (Kp_circuit.Optimize.simplify p) in
      let sq' = Cc.stats (Kp_circuit.Optimize.simplify q) in
      Tables.add_row t
        [
          string_of_int n;
          Tables.fmt_int sp.Cc.size;
          Tables.fmt_int sq.Cc.size;
          Printf.sprintf "%.2f" (float_of_int sq.Cc.size /. float_of_int sp.Cc.size);
          Printf.sprintf "%.2f" (float_of_int sq'.Cc.size /. float_of_int sp'.Cc.size);
          string_of_int sp.Cc.depth;
          string_of_int sq.Cc.depth;
          Printf.sprintf "%.2f" (float_of_int sq.Cc.depth /. float_of_int sp.Cc.depth);
          string_of_int sp.Cc.divisions;
          string_of_int sq.Cc.divisions;
        ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E5: Toeplitz characteristic polynomial size (Theorem 3)              *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let st = st () in
  let t =
    Tables.create
      ~title:
        "E5 (Theorem 3) Toeplitz charpoly ops; claim: cost = O(#levels * \
         M(bivariate size)): with Karatsuba (M(m)=m^1.585) \
         ops/(n^2)^1.585 ~ const; with NTT (M(m)=m log m) \
         ops/(n^2 log n) ~ const — the paper's n^2*polylog"
      ~columns:
        [ "n"; "kar ops"; "kar/(n^2)^1.585"; "ntt ops"; "ntt/(n^2 log n)";
          "det agrees" ]
  in
  let sizes = if !fast then [ 8; 16; 32 ] else [ 8; 16; 32; 64; 128 ] in
  List.iter
    (fun n ->
      let d = Array.init ((2 * n) - 1) (fun _ -> F.random st) in
      let dc = Array.map Cnt.of_int d in
      let ops_k = measure_ops (fun () -> ignore (CTC.charpoly ~n dc)) in
      let ops_n = measure_ops (fun () -> ignore (CTCN.charpoly ~n dc)) in
      let module TCF = Kp_structured.Toeplitz_charpoly.Make (F) (CK) in
      let agrees = F.equal (TCF.det ~n d) (G.det (TZ.to_dense ~n d)) in
      let nn = float_of_int (n * n) in
      Tables.add_row t
        [
          string_of_int n;
          Tables.fmt_int ops_k;
          Printf.sprintf "%.1f" (float_of_int ops_k /. (nn ** 1.585));
          Tables.fmt_int ops_n;
          Printf.sprintf "%.1f" (float_of_int ops_n /. (nn *. log2 n));
          string_of_bool agrees;
        ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E6: small characteristic costs a factor ~n (bound (12) vs (7))       *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let st = st () in
  let t =
    Tables.create
      ~title:
        "E6 (§5, (12) vs (7)) Chistov (any characteristic) vs Leverrier \
         (char 0 / > n), NTT multiplier; claim: Chistov pays an extra factor \
         ~n — the ratio Chistov/Leverrier grows by ~2x per doubling of n \
         (exponent gap ~1); constants favour Chistov at small n"
      ~columns:
        [ "n"; "leverrier ops"; "chistov ops"; "chi/lev"; "ratio growth/doubling";
          "agree" ]
  in
  let sizes = if !fast then [ 8; 16; 32; 64 ] else [ 8; 16; 32; 64; 128 ] in
  let prev_ratio = ref nan in
  List.iter
    (fun n ->
      let d = Array.init ((2 * n) - 1) (fun _ -> F.random st) in
      let dc = Array.map Cnt.of_int d in
      let lev = measure_ops (fun () -> ignore (CTCN.charpoly ~n dc)) in
      let chi = measure_ops (fun () -> ignore (CChN.charpoly ~n dc)) in
      let cp_l = CTCN.charpoly ~n dc and cp_c = CChN.charpoly ~n dc in
      let agree = Array.for_all2 Cnt.equal cp_l cp_c in
      let ratio = float_of_int chi /. float_of_int lev in
      let growth =
        if Float.is_nan !prev_ratio then "-"
        else Printf.sprintf "%.2fx" (ratio /. !prev_ratio)
      in
      prev_ratio := ratio;
      Tables.add_row t
        [
          string_of_int n;
          Tables.fmt_int lev;
          Tables.fmt_int chi;
          Printf.sprintf "%.3f" ratio;
          growth;
          string_of_bool agree;
        ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E7: transposed systems at constant-factor cost (§4)                  *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let st = st () in
  let t =
    Tables.create
      ~title:
        "E7 (§4) transposed solve via Baur–Strassen of the solve circuit; \
         claim: size <= 4x, depth O(1)x, answers match the oracle"
      ~columns:[ "n"; "size ratio"; "depth ratio"; "matches Gauss" ]
  in
  let sizes = if !fast then [ 4; 6 ] else [ 4; 6; 8 ] in
  List.iter
    (fun n ->
      let r_size, r_depth = Tr.length_ratio ~n in
      let a = M.random_nonsingular st n in
      let x_true = Array.init n (fun _ -> F.random st) in
      let b = M.matvec (M.transpose a) x_true in
      let ok =
        match Tr.solve_transposed st a b with
        | Ok (x, _) -> Array.for_all2 F.equal x x_true
        | Error _ -> false
      in
      Tables.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.2f" r_size;
          Printf.sprintf "%.2f" r_depth;
          string_of_bool ok;
        ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E8: the §5 extensions against the elimination oracle                 *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let st = st () in
  let t =
    Tables.create
      ~title:"E8 (§5) randomized extensions vs Gaussian-elimination oracle"
      ~columns:[ "extension"; "trials"; "passed" ]
  in
  let trials = if !fast then 5 else 12 in
  (* rank *)
  let rank_ok = ref 0 in
  for _ = 1 to trials do
    let n = 3 + Random.State.int st 6 in
    let r = Random.State.int st (n + 1) in
    let a = M.random_of_rank st n ~rank:r in
    if Rk.rank st a = G.rank a then incr rank_ok
  done;
  Tables.add_row t [ "rank"; string_of_int trials; string_of_int !rank_ok ];
  (* nullspace *)
  let ns_ok = ref 0 in
  for _ = 1 to trials do
    let n = 3 + Random.State.int st 5 in
    let r = 1 + Random.State.int st (n - 1) in
    let a = M.random_of_rank st n ~rank:r in
    match Ns.nullspace st a with
    | Ok basis
      when List.length basis = n - r
           && List.for_all
                (fun v -> Array.for_all F.is_zero (M.matvec a v))
                basis ->
      incr ns_ok
    | _ -> ()
  done;
  Tables.add_row t [ "nullspace"; string_of_int trials; string_of_int !ns_ok ];
  (* singular solve *)
  let ss_ok = ref 0 in
  for _ = 1 to trials do
    let n = 3 + Random.State.int st 5 in
    let r = 1 + Random.State.int st (n - 1) in
    let a = M.random_of_rank st n ~rank:r in
    let xs = Array.init n (fun _ -> F.random st) in
    let b = M.matvec a xs in
    match Ns.solve_singular st a b with
    | Ok (Some x) when Array.for_all2 F.equal (M.matvec a x) b -> incr ss_ok
    | _ -> ()
  done;
  Tables.add_row t
    [ "singular solve"; string_of_int trials; string_of_int !ss_ok ];
  (* least squares over Q *)
  let module Q = Kp_field.Rational in
  let module CQ = Kp_poly.Conv.Karatsuba (Q) in
  let module MQ = Kp_matrix.Dense.Make (Q) in
  let module GQ = Kp_matrix.Gauss.Make (Q) in
  let module Lsq = Kp_core.Least_squares.Make (Q) (CQ) in
  let ls_trials = max 3 (trials / 3) in
  let ls_ok = ref 0 in
  for k = 1 to ls_trials do
    let m = 5 and n = 3 in
    let a = MQ.init m n (fun i j -> Q.of_int ((((i + k) * (j + 2)) mod 7) + if i = j then 2 else 0)) in
    let b = Array.init m (fun i -> Q.of_int ((i * i) - (2 * k))) in
    match Lsq.solve st a b with
    | Ok x -> if Lsq.residual_orthogonal a x b then incr ls_ok
    | Error _ -> ()
  done;
  Tables.add_row t
    [ "least squares (Q)"; string_of_int ls_trials; string_of_int !ls_ok ];
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E9: wall clock (Bechamel)                                            *)
(* ------------------------------------------------------------------ *)

let run_bechamel tests =
  let open Bechamel in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let quota = if !fast then 0.25 else 0.75 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"e9" tests) in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      rows := (name, est) :: !rows)
    results;
  List.sort (fun (a, _) (b, _) -> compare a b) !rows

let e9 () =
  let rng = st () in
  print_endline
    "E9 (practicality remark) wall-clock with the classical multiplier;\n\
     Bechamel OLS estimates, nanoseconds per run:\n";
  let open Bechamel in
  let n = if !fast then 48 else 64 in
  let a = M.random_nonsingular rng n in
  let x_true = Array.init n (fun _ -> F.random rng) in
  let b = M.matvec a x_true in
  let mm_b = M.random rng n n in
  let solver_rng = st () in
  let module Mont = Kp_field.Gfp_mont.Make (struct
    let p = 998_244_353
  end) in
  let module MMont = Kp_matrix.Dense.Make (Mont) in
  let a_mont = MMont.init n n (fun i j -> Mont.of_standard (M.get a i j)) in
  let b_mont = MMont.init n n (fun i j -> Mont.of_standard (M.get mm_b i j)) in
  let tests =
    [
      Test.make ~name:(Printf.sprintf "matmul n=%d" n)
        (Staged.stage (fun () -> ignore (M.mul a mm_b)));
      Test.make ~name:(Printf.sprintf "matmul_montgomery n=%d" n)
        (Staged.stage (fun () -> ignore (MMont.mul a_mont b_mont)));
      Test.make ~name:(Printf.sprintf "gauss_solve n=%d" n)
        (Staged.stage (fun () -> ignore (G.solve a b)));
      Test.make ~name:(Printf.sprintf "kp_solve_kar n=%d" n)
        (Staged.stage (fun () ->
             ignore (Slv.solve ~strategy:P.Sequential solver_rng a b)));
      Test.make ~name:(Printf.sprintf "kp_solve_ntt n=%d" n)
        (Staged.stage (fun () ->
             ignore
               (SlvN.solve ~strategy:SlvN.P.Sequential solver_rng a b)));
      Test.make ~name:(Printf.sprintf "kp_solve_ntt_dbl n=%d" n)
        (Staged.stage (fun () ->
             ignore (SlvN.solve ~strategy:SlvN.P.Doubling solver_rng a b)));
    ]
  in
  let t =
    Tables.create ~title:"sequential engines (one solve)"
      ~columns:[ "benchmark"; "time/run" ]
  in
  List.iter
    (fun (name, ns) ->
      Tables.add_row t
        [ name; Printf.sprintf "%.3f ms" (ns /. 1e6) ])
    (run_bechamel tests);
  Tables.print t;
  (* multicore: the PRAM stand-in *)
  let np = if !fast then 192 else 384 in
  let big1 = M.random rng np np and big2 = M.random rng np np in
  let cores = Domain.recommended_domain_count () in
  if cores = 1 then
    print_endline
      "note: this machine exposes a single CPU; domain-pool speedups cannot\n\
       exceed 1x here (the pool still runs, measuring its overhead).";
  let pools = List.filter (fun d -> d <= max 2 cores) [ 1; 2; 4; 8 ] in
  let t2 =
    Tables.create
      ~title:
        (Printf.sprintf
           "multicore matrix product (n = %d) over OCaml domains — the \
            PRAM in practice" np)
      ~columns:[ "domains"; "time/run"; "speedup" ]
  in
  let base = ref nan in
  List.iter
    (fun domains ->
      Kp_util.Pool.with_pool ~domains (fun pool ->
          let tests =
            [
              Test.make ~name:(Printf.sprintf "pmatmul d=%d" domains)
                (Staged.stage (fun () -> ignore (M.mul_parallel pool big1 big2)));
            ]
          in
          match run_bechamel tests with
          | [ (_, ns) ] ->
            if domains = 1 then base := ns;
            Tables.add_row t2
              [
                string_of_int domains;
                Printf.sprintf "%.1f ms" (ns /. 1e6);
                Printf.sprintf "%.2fx" (!base /. ns);
              ]
          | _ -> ()))
    pools;
  Tables.print t2;
  (* pooled end-to-end charpoly: the §3 engine with every layer (Newton
     doubling, Gohberg/Semencul applies, convolutions) fanned out on the
     pool — pooled output is required to be bit-identical to sequential *)
  let nc = 128 in
  let module TCN = Kp_structured.Toeplitz_charpoly.Make (F) (NK) in
  let dvec = Array.init ((2 * nc) - 1) (fun _ -> F.random rng) in
  let cp_seq = TCN.charpoly ~n:nc dvec in
  let t3 =
    Tables.create
      ~title:
        (Printf.sprintf
           "pooled Toeplitz charpoly (n = %d, NTT multiplier) over OCaml \
            domains" nc)
      ~columns:[ "domains"; "time/run"; "speedup"; "identical" ]
  in
  let base = ref nan in
  List.iter
    (fun domains ->
      Kp_util.Pool.with_pool ~domains (fun pool ->
          let identical =
            Array.for_all2 F.equal (TCN.charpoly ~pool ~n:nc dvec) cp_seq
          in
          let tests =
            [
              Test.make ~name:(Printf.sprintf "pcharpoly d=%d" domains)
                (Staged.stage (fun () -> ignore (TCN.charpoly ~pool ~n:nc dvec)));
            ]
          in
          match run_bechamel tests with
          | [ (_, ns) ] ->
            if domains = 1 then base := ns;
            Tables.add_row t3
              [
                string_of_int domains;
                Printf.sprintf "%.1f ms" (ns /. 1e6);
                Printf.sprintf "%.2fx" (!base /. ns);
                string_of_bool identical;
              ]
          | _ -> ()))
    pools;
  Tables.print t3

(* ------------------------------------------------------------------ *)
(* E10: ablation — the matrix-multiplication black box (ω)              *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let st = st () in
  let t =
    Tables.create
      ~title:
        "E10 (ablation) the paper treats matrix multiplication as a black \
         box; swapping classical O(n^3) for Strassen O(n^2.81) changes the \
         Krylov phase proportionally — ops(strassen)/ops(classical) should \
         track (n/cutoff)^{2.81-3}"
      ~columns:
        [ "n"; "classical mm"; "strassen mm"; "mm ratio"; "KP krylov (cls)";
          "KP krylov (str)"; "krylov ratio" ]
  in
  let sizes = if !fast then [ 32; 64 ] else [ 32; 64; 128 ] in
  (* hybrid: Strassen on the square products (the repeated squarings),
     classical on the rectangular block extensions *)
  let strassen a b =
    if a.CM.rows = a.CM.cols && b.CM.rows = b.CM.cols && a.CM.rows = b.CM.rows
    then CM.mul_strassen ~cutoff:16 a b
    else CM.mul a b
  in
  List.iter
    (fun n ->
      let a = CM.random st n n and b0 = CM.random st n n in
      let mm_c = measure_ops (fun () -> ignore (CM.mul a b0)) in
      let mm_s = measure_ops (fun () -> ignore (strassen a b0)) in
      let v = Array.init n (fun _ -> Cnt.random st) in
      let kry mul =
        measure_ops (fun () -> ignore (CPN.K.columns ~mul a v (2 * n)))
      in
      let k_c = kry CM.mul and k_s = kry strassen in
      let fn = float_of_int in
      Tables.add_row t
        [
          string_of_int n;
          Tables.fmt_int mm_c;
          Tables.fmt_int mm_s;
          Printf.sprintf "%.3f" (fn mm_s /. fn mm_c);
          Tables.fmt_int k_c;
          Tables.fmt_int k_s;
          Printf.sprintf "%.3f" (fn k_s /. fn k_c);
        ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E11: ablation — Krylov strategy (work vs depth trade)                *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let st = st () in
  print_endline
    "E11 (ablation) Krylov vectors by doubling (paper, display (9)) vs \
     sequentially:\n\
     doubling pays ~log n matrix products (more WORK) to win DEPTH \
     O((log n)^2) vs Θ(n).\n";
  let t =
    Tables.create ~title:"work (field ops, counting) and depth (traced circuit)"
      ~columns:
        [ "n"; "dbl work"; "seq work"; "work ratio"; "dbl depth"; "seq depth";
          "depth ratio" ]
  in
  let sizes = if !fast then [ 8; 16 ] else [ 8; 16; 32 ] in
  List.iter
    (fun n ->
      let a = CM.random st n n in
      let v = Array.init n (fun _ -> Cnt.random st) in
      let w_dbl =
        measure_ops (fun () -> ignore (CPN.K.columns ~mul:CM.mul a v (2 * n)))
      in
      let w_seq =
        measure_ops (fun () -> ignore (CPN.K.columns_sequential a v (2 * n)))
      in
      (* trace both into circuits for exact depth *)
      let depth_dbl, depth_seq =
        let trace_dbl () =
          let module B = Cc.Builder () in
          let module KB = Kp_core.Krylov.Make (B) in
          let a_in = KB.M.init n n (fun _ _ -> B.fresh_input ()) in
          let v_in = Array.init n (fun _ -> B.fresh_input ()) in
          let k = KB.columns ~mul:KB.M.mul a_in v_in (2 * n) in
          B.finish ~outputs:(Array.of_list (Array.to_list k.KB.M.data));
          (Cc.stats B.circuit).Cc.depth
        in
        let trace_seq () =
          let module B = Cc.Builder () in
          let module KB = Kp_core.Krylov.Make (B) in
          let a_in = KB.M.init n n (fun _ _ -> B.fresh_input ()) in
          let v_in = Array.init n (fun _ -> B.fresh_input ()) in
          let k = KB.columns_sequential a_in v_in (2 * n) in
          B.finish ~outputs:(Array.of_list (Array.to_list k.KB.M.data));
          (Cc.stats B.circuit).Cc.depth
        in
        (trace_dbl (), trace_seq ())
      in
      let fn = float_of_int in
      Tables.add_row t
        [
          string_of_int n;
          Tables.fmt_int w_dbl;
          Tables.fmt_int w_seq;
          Printf.sprintf "%.2f" (fn w_dbl /. fn w_seq);
          string_of_int depth_dbl;
          string_of_int depth_seq;
          Printf.sprintf "%.3f" (fn depth_dbl /. fn depth_seq);
        ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E12: ablation — bit-packed GF(2) kernel vs the abstract-field path    *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let rng = st () in
  let t =
    Tables.create
      ~title:
        "E12 (ablation) characteristic-2 workloads: word-packed XOR \
         elimination vs the generic abstract-field Gauss over GF(2) — the \
         constant-factor price of full abstraction"
      ~columns:[ "n"; "packed rank (s)"; "generic rank (s)"; "speedup"; "agree" ]
  in
  let module G2 = Kp_matrix.Gauss.Make (Kp_field.Gf2) in
  let module M2 = Kp_matrix.Dense.Make (Kp_field.Gf2) in
  let module B2 = Kp_matrix.Gf2_matrix in
  let sizes = if !fast then [ 128; 256 ] else [ 128; 256; 512; 1024 ] in
  List.iter
    (fun n ->
      let packed = B2.random rng ~rows:n ~cols:n in
      let generic =
        M2.init n n (fun i j -> if B2.get packed i j then 1 else 0)
      in
      let r1 = ref 0 and r2 = ref 0 in
      let _, t1 = best_of 3 (fun () -> r1 := B2.rank packed) in
      let _, t2 = best_of 3 (fun () -> r2 := G2.rank generic) in
      Tables.add_row t
        [
          string_of_int n;
          Tables.fmt_float t1;
          Tables.fmt_float t2;
          Printf.sprintf "%.1fx" (t2 /. t1);
          string_of_bool (!r1 = !r2);
        ])
    sizes;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E13: solve sessions — k solves of one matrix, fresh vs cached prefix  *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let rng = st () in
  print_endline
    "E13 (sessions): k solves against ONE matrix.  Fresh pays the full \
     Theorem-4 pipeline per RHS (~(2+log n)n^3 + two charpoly engines); a \
     session computes the RHS-independent prefix once and serves each RHS \
     with the O(n^3) rectangular-Krylov remainder.  'identical' checks the \
     sessioned answers equal the fresh ones; misses = 1 certifies exactly \
     one charpoly computation.\n";
  let t =
    Tables.create ~title:"k certified solves of the same matrix, single runs"
      ~columns:
        [ "n"; "k"; "fresh (s)"; "session (s)"; "ratio"; "identical"; "hits";
          "misses" ]
  in
  let n = if !fast then 48 else 128 in
  let ks = [ 1; 4; 16 ] in
  let a = M.random_nonsingular rng n in
  List.iter
    (fun k ->
      let bs =
        Array.init k (fun _ -> Array.init n (fun _ -> F.random rng))
      in
      (* fresh: k independent certified solves, states pre-split as a batch
         caller would *)
      let st_fresh = Kp_util.Rng.make 7001 in
      let sts = Array.init k (fun _ -> Kp_util.Rng.split st_fresh) in
      let fresh = ref [||] in
      let (), t_fresh =
        time (fun () ->
            fresh :=
              Array.init k (fun i ->
                  match Slv.solve sts.(i) a bs.(i) with
                  | Ok (x, _) -> x
                  | Error e ->
                    failwith ("E13 fresh: " ^ Kp_robust.Outcome.error_to_string e)))
      in
      (* sessioned: k separate solve calls through one session — the first
         misses and builds, the rest hit the cached record *)
      let sess = Sess.create (Kp_util.Rng.make 7001) in
      let sessioned = ref [||] in
      let (), t_sess =
        time (fun () ->
            sessioned :=
              Array.init k (fun i ->
                  match Sess.solve sess a bs.(i) with
                  | Ok (x, _) -> x
                  | Error e ->
                    failwith
                      ("E13 session: " ^ Kp_robust.Outcome.error_to_string e)))
      in
      let s = Sess.stats sess in
      let identical =
        Array.for_all2 (Array.for_all2 F.equal) !fresh !sessioned
      in
      Tables.add_row t
        [
          string_of_int n;
          string_of_int k;
          Tables.fmt_float t_fresh;
          Tables.fmt_float t_sess;
          Printf.sprintf "%.2fx" (t_sess /. t_fresh);
          string_of_bool identical;
          string_of_int s.Sess.hits;
          string_of_int s.Sess.misses;
        ])
    ks;
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E14: kernel layer — word-level bulk loops vs scalar FIELD_CORE ops   *)
(* ------------------------------------------------------------------ *)

let e14 () =
  let rng = st () in
  print_endline
    "E14 (kernel layer): GF(p) dense matvec and Krylov doubling through the\n\
     word-level gfp_word kernel (delayed modular reduction, one division per\n\
     block) vs the scalar balanced FIELD_CORE loops the kernel replaced.\n\
     Results are asserted bit-identical before timing; kernel.gfp_word\n\
     counter hits prove the fast path is actually taken.\n";
  let module MC = Kp_matrix.Dense.Core (F) in
  let module K = Kp_core.Krylov.Make (F) in
  let hits () =
    Option.value ~default:0 (Kp_obs.Counter.find "kernel.gfp_word")
  in
  let bench reps f =
    let (), t =
      time (fun () ->
          for _ = 1 to reps do
            ignore (Sys.opaque_identity (f ()))
          done)
    in
    t
  in
  let t =
    Tables.create
      ~title:"kernel vs scalar on the same data, bit-identical (seconds)"
      ~columns:
        [ "n"; "mv reps"; "mv scalar"; "mv kernel"; "mv speedup"; "dbl reps";
          "dbl scalar"; "dbl kernel"; "dbl speedup"; "identical" ]
  in
  (* fixed repetition counts (not Bechamel) keep the kernel.* counters in
     this table deterministic, so the committed baseline can gate them *)
  let mv_reps = if !fast then 100 else 400 in
  let dbl_reps = if !fast then 1 else 2 in
  List.iter
    (fun n ->
      let a = M.random rng n n in
      let v = Array.init n (fun _ -> F.random rng) in
      (* bit-identity first, and prove the kernel path actually fires *)
      let mv_scalar = MC.matvec a v in
      let h0 = hits () in
      let mv_kernel = M.matvec a v in
      if hits () = h0 then
        failwith "E14: kernel.gfp_word did not tick on matvec";
      let p_scalar = K.doubling_powers ~mul:MC.mul a (2 * n) in
      let h1 = hits () in
      let p_kernel = K.doubling_powers ~mul:M.mul a (2 * n) in
      if hits () = h1 then
        failwith "E14: kernel.gfp_word did not tick on doubling";
      let identical =
        Array.for_all2 F.equal mv_scalar mv_kernel
        && Array.length p_scalar = Array.length p_kernel
        && Array.for_all2
             (fun (x : MC.t) (y : MC.t) ->
               Array.for_all2 F.equal x.MC.data y.MC.data)
             p_scalar p_kernel
      in
      if not identical then failwith "E14: kernel and scalar results differ";
      let t_mv_s = bench mv_reps (fun () -> MC.matvec a v) in
      let t_mv_k = bench mv_reps (fun () -> M.matvec a v) in
      let t_dbl_s =
        bench dbl_reps (fun () -> K.doubling_powers ~mul:MC.mul a (2 * n))
      in
      let t_dbl_k =
        bench dbl_reps (fun () -> K.doubling_powers ~mul:M.mul a (2 * n))
      in
      Tables.add_row t
        [
          string_of_int n;
          string_of_int mv_reps;
          Tables.fmt_float t_mv_s;
          Tables.fmt_float t_mv_k;
          Printf.sprintf "%.1fx" (t_mv_s /. t_mv_k);
          string_of_int dbl_reps;
          Tables.fmt_float t_dbl_s;
          Tables.fmt_float t_dbl_k;
          Printf.sprintf "%.1fx" (t_dbl_s /. t_dbl_k);
          string_of_bool identical;
        ])
    [ 128; 256 ];
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E15: kp serve under load — admission control, deadlines, breakers    *)
(* ------------------------------------------------------------------ *)

module Srv = Kp_serve.Server.Make (F) (CK)
module SrvC = Kp_serve.Client
module SrvP = Kp_serve.Protocol
module SrvW = Kp_serve.Wire

let e15 () =
  print_endline
    "E15 (kp serve): the persistent solve service under load.  Three\n\
     segments: (load) concurrent clients stream keyed solves — every\n\
     admitted answer is re-verified client-side and overload rejections\n\
     are honoured by waiting out retry_after_ms; (shed) a queue_limit=0\n\
     daemon must turn every solve into a typed `overloaded` reply —\n\
     never a hang, never a wrong answer — while ping stays answerable;\n\
     (chaos) a daemon over a fault-injecting field demotes block→scalar\n\
     through its circuit breaker and re-promotes after the cooldown.\n\
     Set KP_SERVE_SOCKET to aim the load segment at an external daemon\n\
     (the CI serve-smoke job does); shed and chaos always run in-process.\n";
  let t =
    Tables.create ~title:"serve under load (latencies in ms)"
      ~columns:
        [ "segment"; "requests"; "ok"; "shed"; "errors"; "p50"; "p99";
          "engines" ]
  in
  let percentile lats p =
    match lats with
    | [] -> 0.
    | _ ->
      let a = Array.of_list lats in
      Array.sort compare a;
      let k = Array.length a in
      a.(min (k - 1) (max 0 (int_of_float (ceil (p *. float_of_int k)) - 1)))
  in
  let fmt_ms s = Printf.sprintf "%.1f" (s *. 1e3) in
  let rng = st () in
  let n = 24 in
  let a = M.random_nonsingular rng n in
  let entries = Array.init (n * n) (fun k -> M.get a (k / n) (k mod n)) in
  let sock_name tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "kp-e15-%s-%d.sock" tag (Unix.getpid ()))
  in
  let status j = Option.value ~default:"?" (SrvP.response_status j) in
  let error_tag j =
    Option.bind (SrvW.member "error" j) (fun e ->
        Option.bind (SrvW.member "error" e) SrvW.to_str)
  in
  (* ---- load segment ---- *)
  let threads = if !fast then 3 else 4 in
  let per_thread = if !fast then 6 else 20 in
  let socket, local =
    match Sys.getenv_opt "KP_SERVE_SOCKET" with
    | Some path -> (path, None)
    | None ->
      let path = sock_name "load" in
      let srv = Srv.start (Srv.default_config ~socket_path:path)
          (Kp_util.Rng.make 4242) in
      (path, Some srv)
  in
  let results = Array.make threads ([], [], 0, 0) in
  let worker i () =
    let c = SrvC.connect socket in
    Fun.protect ~finally:(fun () -> SrvC.close c) @@ fun () ->
    let key = Printf.sprintf "e15-%d-%d" (Unix.getpid ()) i in
    let lats = ref [] and engines = ref [] and ok = ref 0 and shed = ref 0 in
    for j = 1 to per_thread do
      (* a planted solution makes every request verifiable client-side *)
      let x_true =
        Array.init n (fun k -> F.of_int (1 + ((1 + i + (31 * j) + k) mod 89)))
      in
      let b = M.matvec a x_true in
      let m =
        if j = 1 then SrvP.Inline { n; entries; key = Some key }
        else SrvP.Keyed key
      in
      let req =
        {
          SrvP.id = Some (Printf.sprintf "t%d-%d" i j);
          op = SrvP.Solve { m; b };
          engine = SrvP.E_auto;
          block_factor = None;
          deadline_ms = Some 10_000;
        }
      in
      let rec go tries =
        let t0 = Kp_obs.Clock.now_s () in
        let j' = SrvC.request c req in
        let dt = Kp_obs.Clock.now_s () -. t0 in
        match status j' with
        | "ok" ->
          lats := dt :: !lats;
          incr ok;
          let x =
            match Option.bind (SrvW.member "x" j') SrvW.to_list with
            | Some l ->
              Array.of_list (List.map (fun v -> Option.get (SrvW.to_int v)) l)
            | None -> failwith "E15: ok reply without x"
          in
          if not (Array.for_all2 F.equal (M.matvec a x) b) then
            failwith "E15: served solution failed clean re-verification";
          (match Option.bind (SrvW.member "engine" j') SrvW.to_str with
          | Some e when not (List.mem e !engines) -> engines := e :: !engines
          | _ -> ())
        | "error" when error_tag j' = Some "overloaded" ->
          (* honour the admission hint and retry *)
          incr shed;
          if tries > 20 then failwith "E15: shed 20 times in a row";
          let hint =
            match
              Option.bind (SrvW.member "error" j') (fun e ->
                  Option.bind (SrvW.member "retry_after_ms" e) SrvW.to_int)
            with
            | Some ms when ms >= 1 -> ms
            | _ -> failwith "E15: overloaded reply without a retry hint"
          in
          Unix.sleepf (float_of_int (min hint 50) /. 1e3);
          go (tries + 1)
        | s -> failwith (Printf.sprintf "E15: unexpected reply status %S" s)
      in
      go 0
    done;
    results.(i) <- (!lats, !engines, !ok, !shed)
  in
  let handles = List.init threads (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join handles;
  (match local with
  | Some srv -> Srv.stop srv
  | None -> ());
  let lats = List.concat_map (fun (l, _, _, _) -> l) (Array.to_list results) in
  let engines =
    List.sort_uniq compare
      (List.concat_map (fun (_, e, _, _) -> e) (Array.to_list results))
  in
  let ok = Array.fold_left (fun s (_, _, o, _) -> s + o) 0 results in
  let shed = Array.fold_left (fun s (_, _, _, d) -> s + d) 0 results in
  if ok <> threads * per_thread then
    failwith
      (Printf.sprintf "E15 load: %d/%d requests answered" ok
         (threads * per_thread));
  Tables.add_row t
    [ "load"; string_of_int (threads * per_thread); string_of_int ok;
      string_of_int shed; "0"; fmt_ms (percentile lats 0.5);
      fmt_ms (percentile lats 0.99); String.concat "+" engines ];
  (* ---- shed segment: queue_limit = 0 turns every solve into a typed
     overload; the daemon never hangs and stays observable ---- *)
  let path = sock_name "shed" in
  let cfg = { (Srv.default_config ~socket_path:path) with Srv.queue_limit = 0 } in
  let srv = Srv.start cfg (Kp_util.Rng.make 4243) in
  let burst = if !fast then 12 else 30 in
  let shed_lats = ref [] and sheds = ref 0 in
  (let c = SrvC.connect path in
   Fun.protect ~finally:(fun () -> SrvC.close c) @@ fun () ->
   for j = 1 to burst do
     let req =
       {
         SrvP.id = Some (Printf.sprintf "s%d" j);
         op = SrvP.Solve { m = SrvP.Inline { n; entries; key = None };
                           b = M.matvec a (Array.make n F.one) };
         engine = SrvP.E_auto;
         block_factor = None;
         deadline_ms = Some 1_000;
       }
     in
     let t0 = Kp_obs.Clock.now_s () in
     let j' = SrvC.request c req in
     shed_lats := (Kp_obs.Clock.now_s () -. t0) :: !shed_lats;
     match (status j', error_tag j') with
     | "error", Some "overloaded" -> incr sheds
     | s, e ->
       failwith
         (Printf.sprintf "E15 shed: expected overloaded, got %s/%s" s
            (Option.value ~default:"-" e))
   done;
   let j' = SrvC.request_line c {|{"op":"ping"}|} in
   match SrvW.parse j' with
   | Ok j' when status j' = "ok" -> ()
   | _ -> failwith "E15 shed: ping no longer answered");
  Srv.stop srv;
  if !sheds <> burst then
    failwith (Printf.sprintf "E15 shed: %d/%d typed rejections" !sheds burst);
  Tables.add_row t
    [ "shed"; string_of_int burst; "0"; string_of_int !sheds; "0";
      fmt_ms (percentile !shed_lats 0.5); fmt_ms (percentile !shed_lats 0.99);
      "-" ];
  (* ---- chaos segment: fault-injecting field behind the daemon; the
     block breaker demotes to scalar, then re-promotes after cooldown ---- *)
  let plan =
    Kp_robust.Fault.plan ~p_corrupt:0. ~p_abort:1.0 ~max_faults:10 ~seed:6 ()
  in
  let module FFld = Kp_robust.Fault.Field (F) in
  let module FF = (val FFld.wrap plan) in
  let module CF = Kp_poly.Conv.Karatsuba (FF) in
  let module FSrv = Kp_serve.Server.Make (FF) (CF) in
  let nc = 6 in
  let ac = M.random_nonsingular rng nc in
  let bc = M.matvec ac (Array.make nc F.one) in
  let path = sock_name "chaos" in
  let now = ref 0L in
  let cfg =
    {
      (FSrv.default_config ~socket_path:path) with
      FSrv.breaker_threshold = 1;
      breaker_cooldown_ms = 1;
    }
  in
  let srv = FSrv.start ~now:(fun () -> !now) cfg (Kp_util.Rng.make 4244) in
  let chaos_lats = ref [] in
  let seen =
    let c = SrvC.connect path in
    Fun.protect ~finally:(fun () -> SrvC.close c) @@ fun () ->
    List.map
      (fun (id, clock) ->
        now := clock;
        let req =
          {
            SrvP.id = Some id;
            op =
              SrvP.Solve
                {
                  m =
                    SrvP.Inline
                      {
                        n = nc;
                        entries =
                          Array.init (nc * nc) (fun k ->
                              M.get ac (k / nc) (k mod nc));
                        key = Some "chaos";
                      };
                  b = bc;
                };
            engine = SrvP.E_block;
            block_factor = Some 2;
            deadline_ms = None;
          }
        in
        let t0 = Kp_obs.Clock.now_s () in
        let j' = SrvC.request c req in
        chaos_lats := (Kp_obs.Clock.now_s () -. t0) :: !chaos_lats;
        if status j' <> "ok" then
          failwith ("E15 chaos: request " ^ id ^ " not served");
        let x =
          match Option.bind (SrvW.member "x" j') SrvW.to_list with
          | Some l ->
            Array.of_list (List.map (fun v -> Option.get (SrvW.to_int v)) l)
          | None -> failwith "E15 chaos: reply without x"
        in
        if not (Array.for_all2 F.equal (M.matvec ac x) bc) then
          failwith "E15 chaos: answer failed clean re-verification";
        Option.value ~default:"?"
          (Option.bind (SrvW.member "engine" j') SrvW.to_str))
      [ ("c1", 0L); ("c2", 0L); ("c3", 10_000_000L) ]
  in
  FSrv.stop srv;
  if seen <> [ "scalar"; "scalar"; "block" ] then
    failwith
      (Printf.sprintf "E15 chaos: engine walk was %s, want scalar,scalar,block"
         (String.concat "," seen));
  Tables.add_row t
    [ "chaos"; "3"; "3"; "0"; "0"; fmt_ms (percentile !chaos_lats 0.5);
      fmt_ms (percentile !chaos_lats 0.99); String.concat ">" seen ];
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E16: block Wiedemann — blocked Krylov phase vs the scalar engine     *)
(* ------------------------------------------------------------------ *)

let e16 () =
  let rng = st () in
  print_endline
    "E16 (block Wiedemann): one certified solve per engine.  The scalar\n\
     engine's default doubling Krylov phase costs ~(2 + log 2n)·n^3 field\n\
     multiplications (repeated squaring of Ã); the block engine replaces it\n\
     with σ = 2⌈n/b⌉+3 sequential n×n by n×b products — ~2n^3 regardless of\n\
     b, traded against an O(σ²b³) matrix Berlekamp–Massey.  'krylov' columns\n\
     are the span-measured phase times (doubling / sequential strategy /\n\
     blocked); answers are asserted identical before any row is printed\n\
     (the solution of a nonsingular system is unique).\n";
  let t =
    Tables.create ~title:"block vs scalar Krylov phase, single certified solves"
      ~columns:
        [ "n"; "b"; "solve scalar (s)"; "solve block (s)"; "krylov dbl (s)";
          "krylov seq (s)"; "krylov block (s)"; "krylov speedup"; "identical" ]
  in
  let span_total path =
    List.fold_left
      (fun acc (s : Kp_obs.Span.stat) ->
        if s.Kp_obs.Span.path = path then Int64.add acc s.Kp_obs.Span.total_ns
        else acc)
      0L (Kp_obs.Span.snapshot ())
  in
  let secs_since path t0 =
    Int64.to_float (Int64.sub (span_total path) t0) /. 1e9
  in
  let scalar_krylov = "solver.solve/pipeline.krylov" in
  let block_krylov = "block.solve/block.sequence" in
  let sizes = if !fast then [ 48; 96 ] else [ 128; 256 ] in
  List.iter
    (fun n ->
      let a = M.random_nonsingular rng n in
      let rhs = Array.init n (fun _ -> F.random rng) in
      let solve_scalar ?strategy () =
        match Slv.solve ?strategy (Kp_util.Rng.make 9001) a rhs with
        | Ok (x, _) -> x
        | Error e ->
          failwith ("E16 scalar: " ^ Kp_robust.Outcome.error_to_string e)
      in
      (* scalar baselines, measured once per n: default doubling strategy
         (the engine's choice) and the sequential strategy (same Krylov op
         count as the blocked phase, scalar schedule) *)
      let k0 = span_total scalar_krylov in
      let x_scalar, t_scalar = time (fun () -> solve_scalar ()) in
      let t_kry_dbl = secs_since scalar_krylov k0 in
      let k1 = span_total scalar_krylov in
      let x_seq, _ = time (fun () -> solve_scalar ~strategy:Slv.P.Sequential ()) in
      let t_kry_seq = secs_since scalar_krylov k1 in
      if not (Array.for_all2 F.equal x_scalar x_seq) then
        failwith "E16: doubling and sequential scalar answers differ";
      List.iter
        (fun bf ->
          let kb0 = span_total block_krylov in
          let x_block, t_block =
            time (fun () ->
                match
                  BW.solve ~block_factor:bf (Kp_util.Rng.make 9001) a rhs
                with
                | Ok (x, _) -> x
                | Error e ->
                  failwith
                    (Printf.sprintf "E16 block b=%d: %s" bf
                       (Kp_robust.Outcome.error_to_string e)))
          in
          let t_kry_blk = secs_since block_krylov kb0 in
          let identical = Array.for_all2 F.equal x_scalar x_block in
          if not identical then
            failwith
              (Printf.sprintf "E16: block (b=%d) and scalar answers differ" bf);
          Tables.add_row t
            [
              string_of_int n;
              string_of_int bf;
              Tables.fmt_float t_scalar;
              Tables.fmt_float t_block;
              Tables.fmt_float t_kry_dbl;
              Tables.fmt_float t_kry_seq;
              Tables.fmt_float t_kry_blk;
              Printf.sprintf "%.1fx" (t_kry_dbl /. t_kry_blk);
              string_of_bool identical;
            ])
        [ 1; 2; 4 ])
    sizes;
  Tables.print t

let e17 () =
  let rng = st () in
  print_endline
    "E17 (sharded row blocks): the Kp_shard engine splits A into s\n\
     contiguous row blocks and fans each apply over the domain pool.\n\
     Splitting is zero-copy for dense A (shards index the matrix's own\n\
     data array) and a rebased per-shard CSR slice for sparse A; every\n\
     shard issues exactly the kernel call the unsharded path issues per\n\
     row, so answers are bit-identical and asserted so (dense and sparse\n\
     applies against matvec, the s-sharded certified block-Wiedemann\n\
     solve against the unsharded one) before any row is printed.\n\
     'speedup' columns are relative to the s = 1 row (the sequential\n\
     fast path) on the same 4-domain pool.  Wall-clock speedup needs\n\
     hardware: on >= 4 cores the dense column approaches s; on a\n\
     single-core host every shard still runs on the caller (the helper\n\
     loop drains the queue) and the columns show pure fan-out overhead\n\
     (< 1x) — correctness is asserted either way.\n";
  let t =
    Tables.create ~title:"row-block sharded applies and solves, 4-domain pool"
      ~columns:
        [ "n"; "s"; "matvec dense (s)"; "dense speedup"; "matvec sparse (s)";
          "sparse speedup"; "solve block (s)"; "identical" ]
  in
  let sizes = if !fast then [ 48; 96 ] else [ 128; 256 ] in
  Kp_util.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun n ->
          let a = M.random_nonsingular rng n in
          let sp = Sp.random rng n n ~density:0.05 in
          let v = Array.init n (fun _ -> F.random rng) in
          let rhs = Array.init n (fun _ -> F.random rng) in
          let dense_ref = M.matvec a v in
          let sparse_ref = Sp.matvec sp v in
          let solve s =
            let shards = if s = 1 then None else Some s in
            match
              BW.solve ~block_factor:2 ~pool ?shards (Kp_util.Rng.make 9001) a
                rhs
            with
            | Ok (x, _) -> x
            | Error e ->
              failwith
                (Printf.sprintf "E17 solve s=%d: %s" s
                   (Kp_robust.Outcome.error_to_string e))
          in
          (* enough repetitions that a single apply's fan-out cost is
             measured, not the timer floor *)
          let reps = max 50 (5_000_000 / (n * n)) in
          let t_dense1 = ref 0.0 and t_sparse1 = ref 0.0 in
          let x_ref = ref [||] in
          List.iter
            (fun s ->
              let pd = Shd.of_dense ~pool ~shards:s a in
              let ps = Shd.of_sparse ~pool ~shards:s sp in
              let dst = Array.make n F.zero in
              let _, t_dense =
                time (fun () ->
                    for _ = 1 to reps do
                      Shd.apply_into pd v dst
                    done)
              in
              if not (Array.for_all2 F.equal dst dense_ref) then
                failwith
                  (Printf.sprintf "E17: sharded dense apply differs (n=%d s=%d)"
                     n s);
              let _, t_sparse =
                time (fun () ->
                    for _ = 1 to reps do
                      Shd.apply_into ps v dst
                    done)
              in
              if not (Array.for_all2 F.equal dst sparse_ref) then
                failwith
                  (Printf.sprintf
                     "E17: sharded sparse apply differs (n=%d s=%d)" n s);
              let x, t_solve = time (fun () -> solve s) in
              if s = 1 then begin
                t_dense1 := t_dense;
                t_sparse1 := t_sparse;
                x_ref := x
              end;
              let identical = Array.for_all2 F.equal x !x_ref in
              if not identical then
                failwith
                  (Printf.sprintf
                     "E17: sharded and unsharded solves differ (n=%d s=%d)" n s);
              Tables.add_row t
                [
                  string_of_int n;
                  string_of_int s;
                  Tables.fmt_float (t_dense /. float_of_int reps);
                  Printf.sprintf "%.1fx" (!t_dense1 /. t_dense);
                  Tables.fmt_float (t_sparse /. float_of_int reps);
                  Printf.sprintf "%.1fx" (!t_sparse1 /. t_sparse);
                  Tables.fmt_float t_solve;
                  string_of_bool identical;
                ])
            [ 1; 2; 4 ])
        sizes);
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E18: Bigarray/C-stub kernel family vs word vs derived               *)
(* ------------------------------------------------------------------ *)

let e18 () =
  let module D = Kp_kernel.Dispatch in
  let rng = st () in
  print_endline
    "E18 (Bigarray/C-stub kernels): the same dense matvec/matmul served by\n\
     every backend of the kernel family — the C stubs (autovectorized\n\
     delayed-reduction GF(p) loops, bit-packed GF(2)), the pure-OCaml\n\
     Bigarray fallback, the PR-5 word backends, and the derived reference.\n\
     Outputs are asserted bit-identical across all four before timing, and\n\
     kernel.cstub.* counter movement proves the stub path is really taken.\n";
  let kernel_for mode (fm : int Kp_field.Field_intf.field) =
    D.with_mode mode (fun () -> D.of_field fm)
  in
  let modes =
    [ ("word", D.Word); ("cstub", D.Cstub); ("bigarray", D.Bigarray_pure);
      ("derived", D.Derived_only) ]
  in
  let bench reps f =
    let (), t =
      time (fun () ->
          for _ = 1 to reps do
            ignore (Sys.opaque_identity (f ()))
          done)
    in
    t
  in
  let t =
    Tables.create
      ~title:
        "kernel family on the same data, bit-identical (seconds; speedup = \
         word/cstub)"
      ~columns:
        [ "field"; "op"; "n"; "reps"; "word"; "cstub"; "bigarray"; "derived";
          "cstub speedup"; "identical" ]
  in
  let cstub_ops0 =
    Option.value ~default:0 (Kp_obs.Counter.find "kernel.cstub.bulk_ops")
  in
  let row field_name (fm : int Kp_field.Field_intf.field) op n reps runner =
    let module Fi =
      (val fm : Kp_field.Field_intf.FIELD with type t = int) in
    let results =
      List.map
        (fun (mode_name, mode) ->
          let k = kernel_for mode fm in
          let out, secs = runner k reps in
          (mode_name, out, secs))
        modes
    in
    let _, ref_out, _ = List.hd results in
    let identical =
      List.for_all
        (fun (_, out, _) -> Array.for_all2 Fi.equal out ref_out)
        results
    in
    if not identical then
      failwith
        (Printf.sprintf "E18: backends disagree on %s %s n=%d" field_name op n);
    let secs name =
      let _, _, s = List.find (fun (m, _, _) -> m = name) results in
      s
    in
    Tables.add_row t
      [
        field_name; op; string_of_int n; string_of_int reps;
        Tables.fmt_float (secs "word");
        Tables.fmt_float (secs "cstub");
        Tables.fmt_float (secs "bigarray");
        Tables.fmt_float (secs "derived");
        Printf.sprintf "%.1fx" (secs "word" /. secs "cstub");
        string_of_bool identical;
      ]
  in
  let fields : (string * int Kp_field.Field_intf.field) list =
    [ ("GF(998244353)", (module Kp_field.Fields.Gf_ntt));
      ("GF(2)", (module Kp_field.Gf2)) ]
  in
  List.iter
    (fun (field_name, (fm : int Kp_field.Field_intf.field)) ->
      let module Fi =
        (val fm : Kp_field.Field_intf.FIELD with type t = int) in
      (* matvec: the acceptance-criterion op, n up to 512 even in --fast *)
      List.iter
        (fun n ->
          let m = Array.init (n * n) (fun _ -> Fi.random rng) in
          let x = Array.init n (fun _ -> Fi.random rng) in
          let reps =
            let base = max 20 (4_000_000 / (n * n)) in
            if !fast then base else 4 * base
          in
          row field_name fm "matvec" n reps (fun k reps ->
              let module K = (val k) in
              let dst = Array.make n Fi.zero in
              K.matvec_into ~m ~cols:n ~row_lo:0 ~row_hi:n ~x ~dst;
              let secs =
                bench reps (fun () ->
                    K.matvec_into ~m ~cols:n ~row_lo:0 ~row_hi:n ~x ~dst)
              in
              (dst, secs)))
        [ 128; 256; 512 ];
      (* matmul: the Krylov-squaring shape (row-accumulator scratch path) *)
      List.iter
        (fun n ->
          let a = Array.init (n * n) (fun _ -> Fi.random rng) in
          let b = Array.init (n * n) (fun _ -> Fi.random rng) in
          let reps = if !fast then 1 else 2 in
          row field_name fm "matmul" n reps (fun k reps ->
              let module K = (val k) in
              let dst = Array.make (n * n) Fi.zero in
              K.matmul_into ~a ~b ~dst ~inner:n ~bcols:n ~row_lo:0 ~row_hi:n;
              let out = Array.copy dst in
              let secs =
                bench reps (fun () ->
                    Array.fill dst 0 (n * n) Fi.zero;
                    K.matmul_into ~a ~b ~dst ~inner:n ~bcols:n ~row_lo:0
                      ~row_hi:n)
              in
              (out, secs)))
        [ 128; 256 ])
    fields;
  (if Kp_kernel.Cstub.available () then begin
     let ops =
       Option.value ~default:0 (Kp_obs.Counter.find "kernel.cstub.bulk_ops")
     in
     if ops <= cstub_ops0 then
       failwith "E18: kernel.cstub.bulk_ops did not advance — stub path not taken"
   end
   else
     print_endline
       "note: C stubs not linked in this build; cstub rows measured the \
        pure-OCaml Bigarray fallback");
  Tables.print t

(* ------------------------------------------------------------------ *)
(* E19: preconditioner kinds on sparse GF(2) operators                  *)
(* ------------------------------------------------------------------ *)

let e19 () =
  let module Pc = Kp_precond.Precond in
  let module F2 = Kp_field.Fields.Gf2 in
  let module C2 = Kp_poly.Conv.Karatsuba_field (F2) in
  let module SP2 = Kp_precond.Precond.Make (F2) (C2) in
  let module Sp2 = Kp_matrix.Sparse.Make (F2) in
  let module TC2 = Kp_structured.Toeplitz_charpoly.Make (F2) (C2) in
  (* counted instantiation — Counting.Make preserves [t = F.t], so the
     CSR value arrays of the GF(2) matrix are reused verbatim *)
  let module Cnt2 = Kp_field.Counting.Make (F2) in
  let module CC2 = Kp_poly.Conv.Karatsuba (Cnt2) in
  let module CSP2 = Kp_precond.Precond.Make (Cnt2) (CC2) in
  let module CSp2 = Kp_matrix.Sparse.Make (Cnt2) in
  let module CTC2 = Kp_structured.Toeplitz_charpoly.Make (Cnt2) (CC2) in
  let rng = st () in
  print_endline
    "E19 (preconditioner kinds on sparse GF(2)): field ops of one\n\
     preconditioner apply, measured through a counting field, for the\n\
     dense Hankel*Diagonal vs the butterfly vs the GF(2^8) extension\n\
     butterfly, next to the cost of the sparse operator itself across a\n\
     density sweep.  The dense P costs ~n^1.58 ops per apply (Karatsuba\n\
     Hankel matvec) and swamps A's ~2*nnz; the sparse kinds stay\n\
     O(n log n), so the preconditioned black box stays sparse end to\n\
     end.  Asserted per row: sparse < dense; across sizes: the\n\
     dense/sparse ratio grows with n (the asymptotic claim).\n";
  let measure_ops2 f =
    let _, c = Cnt2.measure f in
    Counting.total c
  in
  let ccharpoly ~n d = CTC2.charpoly ~n d in
  let fcharpoly ~n d = TC2.charpoly ~n d in
  let builds0 name =
    Option.value ~default:0 (Kp_obs.Counter.find ("precond.build." ^ name))
  in
  let sparse_builds0 = builds0 "sparse" and dense_builds0 = builds0 "dense" in
  let t =
    Tables.create
      ~title:
        "field ops per apply on sparse GF(2) input (counting field; \
         seconds = one apply, uncounted)"
      ~columns:
        [ "n"; "density"; "nnz"; "A ops"; "dense P ops"; "sparse P ops";
          "ext P ops"; "dense/sparse"; "dense s"; "sparse s" ]
  in
  let sizes = if !fast then [ 64; 128; 256 ] else [ 128; 256; 512; 1024 ] in
  let densities = [ 0.01; 0.03; 0.1 ] in
  let lead_ratios = ref [] in
  List.iter
    (fun n ->
      List.iteri
        (fun di density ->
          let a = Sp2.random_nonsingular rng n ~density in
          let nnz = Sp2.nnz a in
          let row_ptr, col_idx, values = Sp2.csr a in
          let trips = ref [] in
          for i = n - 1 downto 0 do
            for k = row_ptr.(i + 1) - 1 downto row_ptr.(i) do
              trips := (i, col_idx.(k), values.(k)) :: !trips
            done
          done;
          let ca = CSp2.of_triplets ~rows:n ~cols:n !trips in
          let v = Array.init n (fun _ -> F2.random rng) in
          let a_ops = measure_ops2 (fun () -> CSp2.matvec ca v) in
          let counted_ops kind =
            let p = CSP2.build ~charpoly:ccharpoly ~card_s:256 ~n kind rng in
            measure_ops2 (fun () -> p.Pc.apply v)
          in
          let dense_ops = counted_ops Pc.Dense_hd in
          let sparse_ops = counted_ops Pc.Sparse_butterfly in
          let ext_ops = counted_ops Pc.Ext_field in
          if sparse_ops >= dense_ops then
            failwith
              (Printf.sprintf
                 "E19: butterfly apply (%d ops) not cheaper than dense H*D \
                  (%d ops) at n=%d"
                 sparse_ops dense_ops n);
          let wall kind =
            let p = SP2.build ~charpoly:fcharpoly ~card_s:256 ~n kind rng in
            let reps = if !fast then 20 else 100 in
            let (), s =
              time (fun () ->
                  for _ = 1 to reps do
                    ignore (Sys.opaque_identity (p.Pc.apply v))
                  done)
            in
            s /. float_of_int reps
          in
          let ratio = float_of_int dense_ops /. float_of_int sparse_ops in
          if di = 0 then lead_ratios := (n, ratio) :: !lead_ratios;
          Tables.add_row t
            [
              string_of_int n; Printf.sprintf "%.2f" density;
              string_of_int nnz; string_of_int a_ops;
              string_of_int dense_ops; string_of_int sparse_ops;
              string_of_int ext_ops; Printf.sprintf "%.1fx" ratio;
              Tables.fmt_float (wall Pc.Dense_hd);
              Tables.fmt_float (wall Pc.Sparse_butterfly);
            ])
        densities)
    sizes;
  (match (List.rev !lead_ratios, !lead_ratios) with
  | (n_small, r_small) :: _, (n_big, r_big) :: _ when n_small <> n_big ->
    if r_big <= r_small then
      failwith
        (Printf.sprintf
           "E19: dense/sparse ops ratio did not grow with n (%.1fx at n=%d \
            vs %.1fx at n=%d)"
           r_small n_small r_big n_big)
  | _ -> ());
  if builds0 "sparse" <= sparse_builds0 || builds0 "dense" <= dense_builds0
  then failwith "E19: precond.build.* counters did not advance";
  Tables.print t

let all_tables =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19) ]

let usage_error fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "bench: %s\n" m;
      Printf.eprintf
        "usage: main.exe [--table E1 ... | all] [--fast] [--json FILE]\n";
      exit 2)
    fmt

let () =
  let requested = ref [] in
  let json_out = ref None in
  let args = Array.to_list Sys.argv |> List.tl in
  let valid = List.map fst all_tables in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--table" :: name :: rest ->
      let name = String.uppercase_ascii name in
      if not (List.mem name valid) then
        usage_error "unknown table %S (valid: %s)" name
          (String.concat " " valid);
      requested := name :: !requested;
      parse rest
    | [ "--table" ] -> usage_error "--table needs a name (E1..E%d)" (List.length valid)
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | [ "--json" ] -> usage_error "--json needs a file path"
    | "all" :: rest -> parse rest
    | unknown :: _ -> usage_error "unknown argument %S" unknown
  in
  parse args;
  let selected =
    if !requested = [] then all_tables
    else List.filter (fun (n, _) -> List.mem n !requested) all_tables
  in
  Printf.printf
    "Kaltofen–Pan (SPAA 1991) experiment harness%s\n\n"
    (if !fast then " [fast mode]" else "");
  let records = ref [] in
  List.iter
    (fun (name, run) ->
      Printf.printf "==== %s ====\n%!" name;
      (* fresh measurement window per table: monotonic spans, blackbox /
         solver / pool counters, and the field-op tallies all restart at 0,
         so the STATS line below is attributable to this table alone *)
      Kp_obs.Export.reset ();
      Cnt.reset ();
      let _, secs = time run in
      Printf.printf "(%s finished in %.1fs)\n%!" name secs;
      (* one-line machine-readable summary (op counts next to seconds);
         --json captures exactly these records into a kp-bench/1 run file *)
      let stats =
        Kp_obs.Export.to_json ~label:name
          ~extra:[ ("seconds", Printf.sprintf "%.3f" secs) ]
          ~events:false ()
      in
      records := stats :: !records;
      Printf.printf "STATS %s\n\n%!" stats)
    selected;
  match !json_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Printf.fprintf oc
      "{\"schema\":\"kp-bench/1\",\"fast\":%b,\"tables\":[\n%s\n]}\n" !fast
      (String.concat ",\n" (List.rev !records));
    close_out oc;
    Printf.printf "wrote %s (%d tables)\n" file (List.length !records)
