(* Benchmark-regression baselines: the model of a kp-bench/1 run file
   (written by main.exe --json) and the tolerance-band comparison that
   bench/compare.exe applies between a fresh run and the committed
   baseline (BENCH_*.json).

   Metrics fall into three classes:
   - deterministic counters (field-op tallies, solver attempt/success
     counts, pool.* fan-out counts): fixed seeds make these functions of
     the code alone, so they must match the baseline within a small
     relative band — drift here is an algorithmic regression, not noise;
   - wall-clock ("seconds" per table): machine-dependent, compared only
     against a generous ratio so a CI smoke run still catches order-of-
     magnitude blowups;
   - schedule/timing-dependent counters (queue-wait nanoseconds, the
     worker/helper task split, and every counter of an iteration-scaled
     bechamel table): ignored. *)

type table = {
  label : string;
  seconds : float option;
  counters : (string * float) list;
}

type run = { fast : bool; tables : table list }

(* tables whose counters scale with however many timed iterations the
   benchmark harness chose to run — not comparable across machines.  E15
   is here for a different reason with the same consequence: its load
   phase runs concurrent client threads, so per-run counter totals are
   schedule-dependent; only its wall-clock is gated. *)
let iteration_scaled_labels = [ "E9"; "E15" ]

let table_of_json j =
  match Option.bind (Json_min.member "label" j) Json_min.to_string with
  | None -> Error "table record without a \"label\""
  | Some label ->
    let seconds = Option.bind (Json_min.member "seconds" j) Json_min.to_float in
    let counters =
      match Json_min.member "counters" j with
      | Some (Json_min.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (Json_min.to_float v))
          fields
      | _ -> []
    in
    Ok { label; seconds; counters }

let run_of_string text =
  match Json_min.parse text with
  | exception Json_min.Parse_error m -> Error ("parse error: " ^ m)
  | j -> (
    match Option.bind (Json_min.member "schema" j) Json_min.to_string with
    | Some "kp-bench/1" -> (
      let fast =
        match Json_min.member "fast" j with
        | Some (Json_min.Bool b) -> b
        | _ -> false
      in
      match Option.bind (Json_min.member "tables" j) Json_min.to_list with
      | None -> Error "run file without a \"tables\" array"
      | Some tables ->
        let rec collect acc = function
          | [] -> Ok { fast; tables = List.rev acc }
          | t :: rest -> (
            match table_of_json t with
            | Ok t -> collect (t :: acc) rest
            | Error _ as e -> e)
        in
        collect [] tables)
    | Some other -> Error (Printf.sprintf "unsupported schema %S" other)
    | None -> Error "not a kp-bench run file (missing \"schema\")")

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    run_of_string text

(* ---- comparison ---- *)

type severity = Info | Regression

type issue = {
  severity : severity;
  table : string;
  metric : string;
  message : string;
}

type metric_class = Deterministic | Ignored

let classify ~label metric =
  let has_suffix suf s =
    let ls = String.length s and lf = String.length suf in
    ls >= lf && String.sub s (ls - lf) lf = suf
  in
  let has_prefix pre s =
    let ls = String.length s and lp = String.length pre in
    ls >= lp && String.sub s 0 lp = pre
  in
  if List.mem label iteration_scaled_labels then Ignored
  else if has_suffix "_ns" metric then Ignored
  else if has_prefix "pool.tasks." metric then Ignored
  else Deterministic

let info table metric fmt =
  Printf.ksprintf
    (fun message -> { severity = Info; table; metric; message })
    fmt

let regression table metric fmt =
  Printf.ksprintf
    (fun message -> { severity = Regression; table; metric; message })
    fmt

(* [seconds_ratio]: a table may take up to baseline*ratio + 0.5s (absolute
   slack covers near-zero baselines) before it counts as a regression.
   [counter_rel_tol]: deterministic counters may drift by this relative
   fraction (against the larger magnitude), with an absolute slack of 2
   for tiny counts. *)
let compare_runs ?(seconds_ratio = 4.0) ?(counter_rel_tol = 0.10) ~baseline
    ~current () =
  let issues = ref [] in
  let push i = issues := i :: !issues in
  if baseline.fast <> current.fast then
    push
      (regression "(run)" "fast"
         "baseline and current runs use different --fast settings; \
          deterministic counters are not comparable");
  List.iter
    (fun (bt : table) ->
      match
        List.find_opt (fun (ct : table) -> ct.label = bt.label) current.tables
      with
      | None ->
        push
          (regression bt.label "(table)"
             "table present in baseline but missing from current run")
      | Some ct ->
        (match (bt.seconds, ct.seconds) with
        | Some bs, Some cs when cs > (bs *. seconds_ratio) +. 0.5 ->
          push
            (regression bt.label "seconds"
               "wall-clock %.3fs exceeds %.1fx baseline %.3fs" cs
               seconds_ratio bs)
        | _ -> ());
        List.iter
          (fun (name, bv) ->
            match classify ~label:bt.label name with
            | Ignored -> ()
            | Deterministic -> (
              match List.assoc_opt name ct.counters with
              | None ->
                if bv > 0. then
                  push
                    (regression bt.label name
                       "counter missing from current run (baseline %.0f)" bv)
              | Some cv ->
                let tol =
                  Float.max (counter_rel_tol *. Float.max (Float.abs bv) (Float.abs cv)) 2.0
                in
                if Float.abs (cv -. bv) > tol then
                  push
                    (regression bt.label name
                       "counter %.0f drifted from baseline %.0f (tolerance \
                        ±%.0f)" cv bv tol)))
          bt.counters;
        List.iter
          (fun (name, cv) ->
            if
              classify ~label:bt.label name = Deterministic
              && not (List.mem_assoc name bt.counters)
              && cv > 0.
            then
              push
                (info bt.label name
                   "new counter (%.0f), absent from baseline — refresh the \
                    baseline to track it" cv))
          ct.counters)
    baseline.tables;
  List.iter
    (fun (ct : table) ->
      if
        not
          (List.exists (fun (bt : table) -> bt.label = ct.label)
             baseline.tables)
      then
        push
          (info ct.label "(table)"
             "table absent from baseline — refresh the baseline to track it"))
    current.tables;
  List.rev !issues

let regressions issues =
  List.filter (fun i -> i.severity = Regression) issues

let render issues =
  let buf = Buffer.create 256 in
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s/%s: %s\n"
           (match i.severity with
           | Regression -> "REGRESSION"
           | Info -> "info      ")
           i.table i.metric i.message))
    issues;
  Buffer.contents buf
