(* Diff a fresh benchmark run against the committed baseline.

     dune exec bench/compare.exe -- --baseline BENCH_PR3.json --current fresh.json

   Exit codes: 0 = no regression (info lines may still print), 1 = at
   least one metric outside its tolerance band, 2 = usage/parse error.
   Tolerances can be widened for noisy environments with
   --seconds-ratio R and --counter-tol F (see bench/baseline.ml for the
   metric classification).  --only LABEL restricts the diff to one table
   (both sides are filtered; the label must exist in the baseline) — the
   CI serve-smoke job uses it to gate E15 from a run that produced only
   E15. *)

let usage_error fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "compare: %s\n" m;
      Printf.eprintf
        "usage: compare.exe --baseline FILE --current FILE \
         [--seconds-ratio R] [--counter-tol F] [--only LABEL]\n";
      exit 2)
    fmt

let () =
  let baseline = ref None
  and current = ref None
  and seconds_ratio = ref 4.0
  and counter_tol = ref 0.10
  and only = ref None in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: path :: rest ->
      baseline := Some path;
      parse rest
    | "--current" :: path :: rest ->
      current := Some path;
      parse rest
    | "--seconds-ratio" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f > 0. ->
        seconds_ratio := f;
        parse rest
      | _ -> usage_error "--seconds-ratio needs a positive number, got %S" v)
    | "--counter-tol" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f >= 0. ->
        counter_tol := f;
        parse rest
      | _ -> usage_error "--counter-tol needs a non-negative number, got %S" v)
    | "--only" :: label :: rest ->
      only := Some (String.uppercase_ascii label);
      parse rest
    | [ ("--baseline" | "--current" | "--seconds-ratio" | "--counter-tol"
        | "--only") as a ] ->
      usage_error "%s needs a value" a
    | unknown :: _ -> usage_error "unknown argument %S" unknown
  in
  parse (List.tl (Array.to_list Sys.argv));
  let need what = function
    | Some v -> v
    | None -> usage_error "missing required %s" what
  in
  let load what path =
    match Kp_bench_lib.Baseline.load path with
    | Ok run -> run
    | Error m -> usage_error "%s %s: %s" what path m
  in
  let baseline = load "baseline" (need "--baseline FILE" !baseline) in
  let current = load "current" (need "--current FILE" !current) in
  let baseline, current =
    match !only with
    | None -> (baseline, current)
    | Some label ->
      let restrict (run : Kp_bench_lib.Baseline.run) =
        {
          run with
          Kp_bench_lib.Baseline.tables =
            List.filter
              (fun (t : Kp_bench_lib.Baseline.table) ->
                t.Kp_bench_lib.Baseline.label = label)
              run.Kp_bench_lib.Baseline.tables;
        }
      in
      let baseline = restrict baseline in
      if baseline.Kp_bench_lib.Baseline.tables = [] then
        usage_error "--only %s: no such table in the baseline" label;
      (baseline, restrict current)
  in
  let issues =
    Kp_bench_lib.Baseline.compare_runs ~seconds_ratio:!seconds_ratio
      ~counter_rel_tol:!counter_tol ~baseline ~current ()
  in
  print_string (Kp_bench_lib.Baseline.render issues);
  let regressions = Kp_bench_lib.Baseline.regressions issues in
  if regressions = [] then begin
    Printf.printf "compare: OK — %d table(s) within tolerance\n"
      (List.length baseline.Kp_bench_lib.Baseline.tables);
    exit 0
  end
  else begin
    Printf.printf "compare: %d regression(s)\n" (List.length regressions);
    exit 1
  end
